// Tests for the deterministic RNG, units helpers, and table rendering.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <vector>

#include "core/error.h"
#include "core/rng.h"
#include "core/table.h"
#include "core/units.h"

using wild5g::Rng;
using wild5g::Table;

TEST(Rng, SameSeedSameStream) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  bool any_diff = false;
  for (int i = 0; i < 20; ++i) {
    if (a.uniform(0.0, 1.0) != b.uniform(0.0, 1.0)) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(2.0, 5.0);
    EXPECT_GE(x, 2.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(4);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    saw_lo |= v == 0;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalHasRequestedMoments) {
  Rng rng(5);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(10.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.1);
}

TEST(Rng, ExponentialMean) {
  Rng rng(6);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.15);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(7);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, ForkIsDeterministicAndIndependent) {
  Rng parent(99);
  Rng child1 = parent.fork(1);
  Rng child1_again = Rng(99).fork(1);
  Rng child2 = parent.fork(2);
  EXPECT_DOUBLE_EQ(child1.uniform(0.0, 1.0), child1_again.uniform(0.0, 1.0));
  // Nearby salts should not produce identical streams.
  Rng c1 = Rng(99).fork(1);
  Rng c2 = Rng(99).fork(2);
  bool differ = false;
  for (int i = 0; i < 10; ++i) {
    if (c1.uniform(0.0, 1.0) != c2.uniform(0.0, 1.0)) differ = true;
  }
  EXPECT_TRUE(differ);
  (void)child2;
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(8);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9};
  auto sorted = v;
  rng.shuffle(std::span<int>(v));
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, PickRejectsEmpty) {
  Rng rng(9);
  std::vector<int> empty;
  EXPECT_THROW((void)rng.pick(std::span<const int>(empty)), wild5g::Error);
}

TEST(Units, Conversions) {
  EXPECT_DOUBLE_EQ(wild5g::mbps_to_bps(1.5), 1.5e6);
  EXPECT_DOUBLE_EQ(wild5g::bps_to_mbps(2e6), 2.0);
  EXPECT_DOUBLE_EQ(wild5g::mw_to_w(1500.0), 1.5);
  EXPECT_DOUBLE_EQ(wild5g::w_to_mw(2.0), 2000.0);
  EXPECT_DOUBLE_EQ(wild5g::ms_to_s(250.0), 0.25);
  EXPECT_DOUBLE_EQ(wild5g::s_to_ms(0.5), 500.0);
  EXPECT_DOUBLE_EQ(wild5g::km_to_m(1.2), 1200.0);
  EXPECT_DOUBLE_EQ(wild5g::m_to_km(500.0), 0.5);
}

TEST(Table, RendersHeaderAndRows) {
  Table table("Demo");
  table.set_header({"a", "b"});
  table.add_row({"1", "2"});
  table.add_row({"333", "4"});
  std::ostringstream os;
  table.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("Demo"), std::string::npos);
  EXPECT_NE(out.find("333"), std::string::npos);
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(Table, ArityMismatchThrows) {
  Table table("Demo");
  table.set_header({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), wild5g::Error);
}

TEST(Table, RowBeforeHeaderThrows) {
  Table table("Demo");
  EXPECT_THROW(table.add_row({"x"}), wild5g::Error);
}

TEST(Table, CsvEscapesCommasAndQuotes) {
  Table table("Demo");
  table.set_header({"name", "value"});
  table.add_row({"a,b", "say \"hi\""});
  std::ostringstream os;
  table.write_csv(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("\"a,b\""), std::string::npos);
  EXPECT_NE(out.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, NumFormatsDigits) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
}
