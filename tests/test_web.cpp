// Tests for the web corpus, page-load simulator, and interface selector
// (Sec. 6).
#include "web/selector.h"

#include <gtest/gtest.h>

#include "core/error.h"
#include "core/rng.h"
#include "web/page_load.h"
#include "web/website.h"

namespace ww = wild5g::web;
namespace wp = wild5g::power;
using wild5g::Rng;

namespace {

ww::Website typical_site() {
  ww::Website site;
  site.domain = "typical.example";
  site.object_count = 80;
  site.image_count = 40;
  site.video_count = 0;
  site.dynamic_object_count = 25;
  site.total_page_size_mb = 2.5;
  site.dynamic_size_fraction = 0.3;
  return site;
}

}  // namespace

TEST(Corpus, GeneratesRequestedCountWithSaneRanges) {
  Rng rng(1);
  const auto corpus = ww::generate_corpus(300, rng);
  ASSERT_EQ(corpus.size(), 300u);
  for (const auto& site : corpus) {
    EXPECT_GE(site.object_count, 3);
    EXPECT_LE(site.object_count, 1000);
    EXPECT_GT(site.total_page_size_mb, 0.0);
    EXPECT_LE(site.dynamic_object_count, site.object_count);
    EXPECT_GE(site.dynamic_object_fraction(), 0.0);
    EXPECT_LE(site.dynamic_object_fraction(), 1.0);
    EXPECT_LE(site.image_count, site.object_count);
  }
}

TEST(Corpus, SpansTheFig19Bins) {
  Rng rng(2);
  const auto corpus = ww::generate_corpus(1500, rng);
  int small_pages = 0;
  int large_pages = 0;
  int few_objects = 0;
  int many_objects = 0;
  for (const auto& site : corpus) {
    if (site.total_page_size_mb < 1.0) ++small_pages;
    if (site.total_page_size_mb > 10.0) ++large_pages;
    if (site.object_count <= 10) ++few_objects;
    if (site.object_count > 100) ++many_objects;
  }
  EXPECT_GT(small_pages, 30);
  EXPECT_GT(large_pages, 30);
  EXPECT_GT(few_objects, 20);
  EXPECT_GT(many_objects, 100);
}

TEST(Corpus, FeatureVectorMatchesTable5) {
  const auto names = ww::feature_names();
  ASSERT_EQ(names.size(), 7u);
  const auto site = typical_site();
  const auto features = ww::feature_vector(site);
  ASSERT_EQ(features.size(), 7u);
  EXPECT_NEAR(features[0], 25.0 / 80.0, 1e-9);  // DNO
  EXPECT_DOUBLE_EQ(features[4], 2.5);           // PS
  EXPECT_DOUBLE_EQ(features[5], 80.0);          // NO
}

TEST(PageLoad, FiveGFasterFourGCheaper) {
  // The Sec. 6 headline: mmWave 5G always wins PLT, 4G always wins energy.
  const auto device = wp::DevicePowerProfile::s10();
  Rng rng(3);
  const auto site = typical_site();
  double plt5 = 0.0, plt4 = 0.0, e5 = 0.0, e4 = 0.0;
  for (int i = 0; i < 10; ++i) {
    const auto r5 = ww::load_page(site, ww::mmwave_page_config(), device, rng);
    const auto r4 = ww::load_page(site, ww::lte_page_config(), device, rng);
    plt5 += r5.plt_s;
    plt4 += r4.plt_s;
    e5 += r5.energy_j;
    e4 += r4.energy_j;
  }
  EXPECT_LT(plt5, plt4);
  EXPECT_LT(e4, e5);
}

TEST(PageLoad, PltGrowsWithObjectCount) {
  const auto device = wp::DevicePowerProfile::s10();
  auto plt_for = [&](int objects) {
    ww::Website site = typical_site();
    site.object_count = objects;
    site.image_count = objects / 2;
    site.dynamic_object_count = objects / 4;
    Rng rng(4);
    double total = 0.0;
    for (int i = 0; i < 6; ++i) {
      total += ww::load_page(site, ww::lte_page_config(), device, rng).plt_s;
    }
    return total / 6.0;
  };
  EXPECT_LT(plt_for(10), plt_for(100));
  EXPECT_LT(plt_for(100), plt_for(600));
}

TEST(PageLoad, GapGrowsWithPageSize) {
  // Fig. 19b: the 4G-5G PLT gap widens on heavier pages.
  const auto device = wp::DevicePowerProfile::s10();
  auto gap_for = [&](double size_mb, int objects) {
    ww::Website site = typical_site();
    site.total_page_size_mb = size_mb;
    site.object_count = objects;
    site.image_count = objects / 2;
    site.dynamic_object_count = objects / 4;
    Rng rng(5);
    double gap = 0.0;
    for (int i = 0; i < 6; ++i) {
      const auto r4 = ww::load_page(site, ww::lte_page_config(), device, rng);
      const auto r5 =
          ww::load_page(site, ww::mmwave_page_config(), device, rng);
      gap += r4.plt_s - r5.plt_s;
    }
    return gap / 6.0;
  };
  EXPECT_LT(gap_for(0.5, 30), gap_for(20.0, 300));
}

TEST(PageLoad, PerSecondSeriesIntegratesToPageSize) {
  const auto device = wp::DevicePowerProfile::s10();
  Rng rng(6);
  const auto site = typical_site();
  const auto result =
      ww::load_page(site, ww::mmwave_page_config(), device, rng);
  double mbits = 0.0;
  for (double v : result.per_second_dl_mbps) mbits += v;
  EXPECT_NEAR(mbits, site.total_page_size_mb * 8.0, 0.5);
}

TEST(PageLoad, RejectsEmptySite) {
  const auto device = wp::DevicePowerProfile::s10();
  Rng rng(7);
  ww::Website site;
  EXPECT_THROW(
      (void)ww::load_page(site, ww::lte_page_config(), device, rng),
      wild5g::Error);
}

TEST(Selector, PaperModelsOrderedByEnergyWeight) {
  const auto models = ww::paper_qoe_models();
  ASSERT_EQ(models.size(), 5u);
  EXPECT_EQ(models.front().id, "M1");
  for (std::size_t i = 1; i < models.size(); ++i) {
    EXPECT_GT(models[i].alpha, models[i - 1].alpha);
  }
}

class SelectorFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng rng(8);
    const auto corpus = ww::generate_corpus(400, rng);
    const auto device = wp::DevicePowerProfile::s10();
    measurements_ = new std::vector<ww::SiteMeasurement>(
        ww::measure_corpus(corpus, 2, device, rng));
  }
  static void TearDownTestSuite() {
    delete measurements_;
    measurements_ = nullptr;
  }
  static std::vector<ww::SiteMeasurement>* measurements_;
};

std::vector<ww::SiteMeasurement>* SelectorFixture::measurements_ = nullptr;

TEST_F(SelectorFixture, HigherAlphaMeansMore4g) {
  // Table 6: the 4G share grows monotonically from M1 to M5.
  const auto& ms = *measurements_;
  const std::span<const ww::SiteMeasurement> train(ms.data(), 280);
  const std::span<const ww::SiteMeasurement> test(ms.data() + 280,
                                                  ms.size() - 280);
  int prev_4g = -1;
  for (const auto& weights : ww::paper_qoe_models()) {
    ww::InterfaceSelector selector(weights);
    Rng rng(9);
    selector.train(train, rng);
    const auto counts = selector.counts(test);
    EXPECT_EQ(counts.use_4g + counts.use_5g, static_cast<int>(test.size()));
    EXPECT_GE(counts.use_4g, prev_4g) << weights.id;
    prev_4g = counts.use_4g;
  }
}

TEST_F(SelectorFixture, ExtremesMatchTable6Shape) {
  const auto& ms = *measurements_;
  const std::span<const ww::SiteMeasurement> train(ms.data(), 280);
  const std::span<const ww::SiteMeasurement> test(ms.data() + 280,
                                                  ms.size() - 280);
  // M1 (performance): overwhelmingly 5G. M5 (energy): overwhelmingly 4G.
  ww::InterfaceSelector m1(ww::paper_qoe_models()[0]);
  ww::InterfaceSelector m5(ww::paper_qoe_models()[4]);
  Rng rng(10);
  m1.train(train, rng);
  m5.train(train, rng);
  const auto c1 = m1.counts(test);
  const auto c5 = m5.counts(test);
  EXPECT_GT(c1.use_5g, 3 * c1.use_4g);
  EXPECT_GT(c5.use_4g, 5 * c5.use_5g);
}

TEST_F(SelectorFixture, PredictsOracleWell) {
  const auto& ms = *measurements_;
  const std::span<const ww::SiteMeasurement> train(ms.data(), 280);
  const std::span<const ww::SiteMeasurement> test(ms.data() + 280,
                                                  ms.size() - 280);
  ww::InterfaceSelector selector(ww::paper_qoe_models()[2]);  // balanced
  Rng rng(11);
  selector.train(train, rng);
  EXPECT_GT(selector.accuracy(test), 0.75);
}

TEST_F(SelectorFixture, SelectionSavesEnergyModestPltCost) {
  // Sec. 6.2: interface selection saves 15-66% energy.
  const auto& ms = *measurements_;
  const std::span<const ww::SiteMeasurement> train(ms.data(), 280);
  const std::span<const ww::SiteMeasurement> test(ms.data() + 280,
                                                  ms.size() - 280);
  ww::InterfaceSelector selector(ww::paper_qoe_models()[3]);  // M4
  Rng rng(12);
  selector.train(train, rng);
  const auto outcome = selector.outcome(test);
  EXPECT_GT(outcome.energy_saving_percent, 15.0);
  EXPECT_LT(outcome.energy_saving_percent, 80.0);
  EXPECT_GT(outcome.plt_penalty_percent, 0.0);
}

TEST_F(SelectorFixture, DescribeTreeIsReadable) {
  const auto& ms = *measurements_;
  const std::span<const ww::SiteMeasurement> train(ms.data(), 280);
  ww::InterfaceSelector selector(ww::paper_qoe_models()[0]);
  Rng rng(13);
  selector.train(train, rng);
  const auto text = selector.describe_tree();
  EXPECT_NE(text.find("Use"), std::string::npos);
  const auto importances = selector.feature_importances();
  EXPECT_EQ(importances.size(), 7u);
}

TEST(Selector, RejectsTinyTrainingSet) {
  ww::InterfaceSelector selector(ww::paper_qoe_models()[0]);
  std::vector<ww::SiteMeasurement> tiny(5);
  Rng rng(14);
  EXPECT_THROW(selector.train(tiny, rng), wild5g::Error);
}

TEST(PageLoad, MultiplexingCutsPlt) {
  // HTTP/2-style multiplexing removes per-object request round-trips.
  const auto device = wp::DevicePowerProfile::s10();
  ww::Website site = typical_site();
  site.object_count = 200;
  site.image_count = 100;
  site.dynamic_object_count = 60;
  auto pooled = ww::lte_page_config();
  auto multiplexed = pooled;
  multiplexed.multiplexed = true;
  Rng rng(40);
  double plt_pool = 0.0;
  double plt_mux = 0.0;
  for (int i = 0; i < 6; ++i) {
    plt_pool += ww::load_page(site, pooled, device, rng).plt_s;
    plt_mux += ww::load_page(site, multiplexed, device, rng).plt_s;
  }
  EXPECT_LT(plt_mux, 0.7 * plt_pool);
}

TEST(PageLoad, MultiplexingStillTransfersWholePage) {
  const auto device = wp::DevicePowerProfile::s10();
  auto config = ww::mmwave_page_config();
  config.multiplexed = true;
  Rng rng(41);
  const auto site = typical_site();
  const auto result = ww::load_page(site, config, device, rng);
  double mbits = 0.0;
  for (double v : result.per_second_dl_mbps) mbits += v;
  EXPECT_NEAR(mbits, site.total_page_size_mb * 8.0, 0.5);
  EXPECT_GT(result.energy_j, 0.0);
}

TEST(PageLoad, MultiplexingHelpsObjectHeavyPagesMost) {
  // The win scales with object count (request RTTs removed per object).
  const auto device = wp::DevicePowerProfile::s10();
  auto ratio_for = [&](int objects) {
    ww::Website site = typical_site();
    site.object_count = objects;
    site.image_count = objects / 2;
    site.dynamic_object_count = objects / 4;
    auto pooled = ww::lte_page_config();
    auto mux = pooled;
    mux.multiplexed = true;
    Rng rng(42);
    double p = 0.0;
    double m = 0.0;
    for (int i = 0; i < 6; ++i) {
      p += ww::load_page(site, pooled, device, rng).plt_s;
      m += ww::load_page(site, mux, device, rng).plt_s;
    }
    return m / p;
  };
  EXPECT_LT(ratio_for(400), ratio_for(15));
}
