// Unit tests for the fault-injection layer: FaultPlan JSON parsing and
// validation rejects, and the Injector's pure deterministic query surface.
#include <gtest/gtest.h>

#include <cmath>

#include "core/error.h"
#include "faults/fault_plan.h"
#include "faults/injector.h"
#include "sim/simulator.h"

namespace {

using wild5g::Error;
using wild5g::faults::FaultKind;
using wild5g::faults::FaultPlan;
using wild5g::faults::FaultWindow;
using wild5g::faults::Injector;

FaultPlan plan_of(std::vector<FaultWindow> windows) {
  FaultPlan plan;
  plan.name = "test";
  plan.windows = std::move(windows);
  return plan;
}

TEST(FaultPlan, ParsesWellFormedDocument) {
  const auto plan = FaultPlan::parse(R"({
    "name": "demo", "seed_salt": 7,
    "windows": [
      {"kind": "nr_to_lte_outage", "start_s": 3, "duration_s": 5,
       "magnitude": 0.1},
      {"kind": "server_unreachable", "start_s": 20, "duration_s": 2}
    ]
  })");
  EXPECT_EQ(plan.name, "demo");
  EXPECT_EQ(plan.seed_salt, 7u);
  ASSERT_EQ(plan.windows.size(), 2u);
  EXPECT_EQ(plan.windows[0].kind, FaultKind::kNrToLteOutage);
  EXPECT_DOUBLE_EQ(plan.windows[0].end_s(), 8.0);
  EXPECT_DOUBLE_EQ(plan.windows[1].magnitude, 0.0);  // optional, defaults 0
}

TEST(FaultPlan, RoundTripsThroughJson) {
  const auto plan = FaultPlan::parse(R"({
    "name": "rt", "seed_salt": 3,
    "windows": [{"kind": "loss_burst", "start_s": 1, "duration_s": 2,
                 "magnitude": 0.5}]
  })");
  const auto reparsed = FaultPlan::from_json(plan.to_json());
  EXPECT_EQ(reparsed.name, plan.name);
  ASSERT_EQ(reparsed.windows.size(), 1u);
  EXPECT_EQ(reparsed.windows[0].kind, FaultKind::kLossBurst);
  EXPECT_DOUBLE_EQ(reparsed.windows[0].magnitude, 0.5);
}

TEST(FaultPlan, RejectsUnknownKind) {
  EXPECT_THROW(FaultPlan::parse(R"({"windows": [
    {"kind": "gamma_ray_burst", "start_s": 0, "duration_s": 1}
  ]})"),
               Error);
}

TEST(FaultPlan, RejectsNegativeDuration) {
  EXPECT_THROW(FaultPlan::parse(R"({"windows": [
    {"kind": "radio_outage", "start_s": 0, "duration_s": -5}
  ]})"),
               Error);
  EXPECT_THROW(FaultPlan::parse(R"({"windows": [
    {"kind": "radio_outage", "start_s": 0, "duration_s": 0}
  ]})"),
               Error);
}

TEST(FaultPlan, RejectsNegativeStartAndMissingFields) {
  EXPECT_THROW(FaultPlan::parse(R"({"windows": [
    {"kind": "radio_outage", "start_s": -1, "duration_s": 5}
  ]})"),
               Error);
  EXPECT_THROW(FaultPlan::parse(R"({"windows": [
    {"kind": "radio_outage", "duration_s": 5}
  ]})"),
               Error);
  EXPECT_THROW(FaultPlan::parse(R"({"windows": [
    {"start_s": 0, "duration_s": 5}
  ]})"),
               Error);
  EXPECT_THROW(FaultPlan::parse(R"({"name": "no windows key"})"), Error);
}

TEST(FaultPlan, RejectsOverlappingSameKindWindows) {
  EXPECT_THROW(FaultPlan::parse(R"({"windows": [
    {"kind": "radio_outage", "start_s": 0, "duration_s": 10},
    {"kind": "radio_outage", "start_s": 5, "duration_s": 10}
  ]})"),
               Error);
  // Different kinds may overlap freely.
  EXPECT_NO_THROW(FaultPlan::parse(R"({"windows": [
    {"kind": "radio_outage", "start_s": 0, "duration_s": 10},
    {"kind": "latency_spike", "start_s": 5, "duration_s": 10,
     "magnitude": 20}
  ]})"));
  // Touching half-open windows do not overlap.
  EXPECT_NO_THROW(FaultPlan::parse(R"({"windows": [
    {"kind": "radio_outage", "start_s": 0, "duration_s": 10},
    {"kind": "radio_outage", "start_s": 10, "duration_s": 10}
  ]})"));
}

TEST(FaultPlan, RejectsOutOfRangeFractionMagnitude) {
  EXPECT_THROW(FaultPlan::parse(R"({"windows": [
    {"kind": "object_fail", "start_s": 0, "duration_s": 1, "magnitude": 1.5}
  ]})"),
               Error);
  // Additive magnitudes (dB, ms) may exceed 1.
  EXPECT_NO_THROW(FaultPlan::parse(R"({"windows": [
    {"kind": "latency_spike", "start_s": 0, "duration_s": 1,
     "magnitude": 250}
  ]})"));
}

TEST(FaultWindow, CoversIsHalfOpen) {
  const FaultWindow w{FaultKind::kRadioOutage, 2.0, 3.0, 0.0};
  EXPECT_FALSE(w.covers(1.999));
  EXPECT_TRUE(w.covers(2.0));
  EXPECT_TRUE(w.covers(4.999));
  EXPECT_FALSE(w.covers(5.0));
}

TEST(Injector, AnswersTimeQueries) {
  const Injector injector(
      plan_of({{FaultKind::kMmwaveBlockage, 10.0, 5.0, 18.0},
               {FaultKind::kLatencySpike, 10.0, 5.0, 40.0},
               {FaultKind::kRadioOutage, 30.0, 10.0, 0.0}}),
      1234);
  EXPECT_DOUBLE_EQ(injector.rsrp_penalty_db_at(12.0), 18.0);
  EXPECT_DOUBLE_EQ(injector.rsrp_penalty_db_at(16.0), 0.0);
  EXPECT_DOUBLE_EQ(injector.extra_rtt_ms_at(12.0), 40.0);
  EXPECT_TRUE(injector.radio_outage_at(35.0));
  EXPECT_FALSE(injector.radio_outage_at(29.0));
  // Half the [25, 45) window sits inside the outage.
  EXPECT_DOUBLE_EQ(injector.outage_fraction(25.0, 45.0), 0.5);
  EXPECT_DOUBLE_EQ(injector.outage_fraction(30.0, 40.0), 1.0);
  EXPECT_DOUBLE_EQ(injector.outage_fraction(0.0, 10.0), 0.0);
}

TEST(Injector, BandwidthScaleComposes) {
  const Injector injector(
      plan_of({{FaultKind::kChunkStall, 0.0, 10.0, 0.9},
               {FaultKind::kNrToLteOutage, 5.0, 10.0, 0.2},
               {FaultKind::kRadioOutage, 20.0, 5.0, 0.0}}),
      1);
  EXPECT_NEAR(injector.bandwidth_scale_at(2.0), 0.1, 1e-12);
  EXPECT_NEAR(injector.bandwidth_scale_at(7.0), 0.1 * 0.2, 1e-12);
  EXPECT_NEAR(injector.bandwidth_scale_at(12.0), 0.2, 1e-12);
  EXPECT_DOUBLE_EQ(injector.bandwidth_scale_at(22.0), 0.0);
  EXPECT_DOUBLE_EQ(injector.bandwidth_scale_at(50.0), 1.0);
}

TEST(Injector, StochasticDecisionsAreDeterministicAndSeedSensitive) {
  const auto plan = plan_of({{FaultKind::kObjectFail, 0.0, 100.0, 0.3}});
  const Injector a(plan, 42);
  const Injector b(plan, 42);
  const Injector c(plan, 43);
  int differs = 0;
  int fails = 0;
  for (std::uint64_t i = 0; i < 500; ++i) {
    EXPECT_EQ(a.object_fetch_fails(9, i, 1.0), b.object_fetch_fails(9, i, 1.0));
    if (a.object_fetch_fails(9, i, 1.0) != c.object_fetch_fails(9, i, 1.0)) {
      ++differs;
    }
    if (a.object_fetch_fails(9, i, 1.0)) ++fails;
  }
  EXPECT_GT(differs, 0) << "campaign seed does not reach decisions";
  // ~30% of 500 draws; generous envelope.
  EXPECT_GT(fails, 90);
  EXPECT_LT(fails, 220);
  // Outside any window nothing fails.
  EXPECT_FALSE(a.object_fetch_fails(9, 1, 200.0));
  // Different salts select different object subsets.
  int salt_differs = 0;
  for (std::uint64_t i = 0; i < 500; ++i) {
    if (a.object_fetch_fails(1, i, 1.0) != a.object_fetch_fails(2, i, 1.0)) {
      ++salt_differs;
    }
  }
  EXPECT_GT(salt_differs, 0);
}

TEST(Injector, CorruptRecordRespectsIndexWindows) {
  const Injector injector(
      plan_of({{FaultKind::kTraceCorrupt, 100.0, 50.0, 1.0}}), 7);
  for (std::uint64_t i = 0; i < 100; ++i) {
    EXPECT_FALSE(injector.corrupt_record(i));
  }
  int corrupted = 0;
  for (std::uint64_t i = 100; i < 150; ++i) {
    if (injector.corrupt_record(i)) ++corrupted;
  }
  EXPECT_EQ(corrupted, 50);  // magnitude 1.0 = every record in the window
  EXPECT_FALSE(injector.corrupt_record(150));
}

TEST(Injector, RejectsInvalidPlanAtConstruction) {
  EXPECT_THROW(Injector(plan_of({{FaultKind::kRadioOutage, 0.0, -1.0, 0.0}}),
                        1),
               Error);
}

TEST(Injector, ArmSchedulesEdgesOnSimulator) {
  const Injector injector(
      plan_of({{FaultKind::kServerStall, 2.0, 3.0, 0.5}}), 1);
  wild5g::sim::Simulator sim;
  std::vector<std::pair<double, bool>> edges;
  injector.arm(sim, [&](const FaultWindow& w, bool is_start) {
    EXPECT_EQ(w.kind, FaultKind::kServerStall);
    edges.emplace_back(sim.now_ms(), is_start);
  });
  sim.run();
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_DOUBLE_EQ(edges[0].first, 2000.0);
  EXPECT_TRUE(edges[0].second);
  EXPECT_DOUBLE_EQ(edges[1].first, 5000.0);
  EXPECT_FALSE(edges[1].second);
}

TEST(Injector, ArmSkipsWindowsAlreadyInProgress) {
  const Injector injector(
      plan_of({{FaultKind::kServerStall, 1.0, 10.0, 0.5},
               {FaultKind::kLossBurst, 8.0, 2.0, 0.1}}),
      1);
  wild5g::sim::Simulator sim;
  sim.schedule_at(5000.0, [] {});
  sim.run();  // now at t = 5 s: the stall window already started
  int edges = 0;
  injector.arm(sim, [&](const FaultWindow& w, bool) {
    EXPECT_EQ(w.kind, FaultKind::kLossBurst);
    ++edges;
  });
  sim.run();
  EXPECT_EQ(edges, 2);
}

}  // namespace
