// Tests for the throughput predictors (Sec. 5.3 / Fig. 18a machinery).
#include "abr/predictor.h"

#include <gtest/gtest.h>

#include "abr/video.h"
#include "core/error.h"
#include "core/stats.h"

namespace wa = wild5g::abr;
namespace wt = wild5g::traces;
using wild5g::Rng;

namespace {

wa::AbrContext make_context(const wa::VideoProfile& video,
                            std::span<const double> past, double now_s) {
  wa::AbrContext context;
  context.video = &video;
  context.past_chunk_mbps = past;
  context.now_s = now_s;
  context.chunk_count = 60;
  return context;
}

}  // namespace

TEST(HarmonicMean, MatchesStatsHelper) {
  const auto video = wa::video_ladder_5g();
  const std::vector<double> past{100.0, 50.0, 200.0, 80.0, 120.0};
  wa::HarmonicMeanPredictor predictor(5);
  const auto context = make_context(video, past, 0.0);
  wa::HarmonicMeanPredictor p(5);
  EXPECT_NEAR(p.predict_mbps(context),
              wild5g::stats::harmonic_mean(past), 1e-9);
}

TEST(HarmonicMean, UsesOnlyWindow) {
  const auto video = wa::video_ladder_5g();
  const std::vector<double> past{1.0, 1.0, 1.0, 100.0, 100.0, 100.0};
  wa::HarmonicMeanPredictor p(3);
  const auto context = make_context(video, past, 0.0);
  EXPECT_NEAR(p.predict_mbps(context), 100.0, 1e-9);
}

TEST(HarmonicMean, FallbackBeforeHistory) {
  const auto video = wa::video_ladder_5g();
  wa::HarmonicMeanPredictor p;
  const auto context = make_context(video, {}, 0.0);
  EXPECT_DOUBLE_EQ(p.predict_mbps(context), video.track_mbps.front());
}

TEST(Oracle, ExactOnConstantTrace) {
  const auto video = wa::video_ladder_5g();
  wt::Trace trace;
  trace.mbps.assign(100, 77.0);
  wa::TraceSource source(trace);
  wa::OraclePredictor oracle(4.0);
  oracle.on_session_start(source);
  const auto context = make_context(video, {}, 10.0);
  EXPECT_NEAR(oracle.predict_mbps(context), 77.0, 1e-9);
}

TEST(Oracle, SeesTheFutureStep) {
  const auto video = wa::video_ladder_5g();
  wt::Trace trace;
  trace.mbps.assign(10, 100.0);
  trace.mbps.resize(100, 10.0);  // collapse at t=10
  wa::TraceSource source(trace);
  wa::OraclePredictor oracle(4.0);
  oracle.on_session_start(source);
  // A causal predictor at t=9.5 would say ~100; the oracle sees the cliff.
  const auto context = make_context(video, {}, 9.5);
  EXPECT_LT(oracle.predict_mbps(context), 30.0);
}

TEST(Oracle, RequiresSessionStart) {
  const auto video = wa::video_ladder_5g();
  wa::OraclePredictor oracle;
  const auto context = make_context(video, {}, 0.0);
  EXPECT_THROW((void)oracle.predict_mbps(context), wild5g::Error);
}

TEST(Gbdt, TrainsAndPredictsReasonably) {
  Rng rng(1);
  auto config = wt::lumos5g_mmwave_config();
  config.count = 40;
  const auto traces = wt::generate_traces(config, rng);
  wa::GbdtPredictor gbdt;
  Rng train_rng(2);
  gbdt.train(traces, train_rng);
  ASSERT_TRUE(gbdt.is_trained());

  const auto video = wa::video_ladder_5g();
  const std::vector<double> steady{150.0, 150.0, 150.0, 150.0, 150.0};
  const auto context = make_context(video, steady, 0.0);
  const double predicted = gbdt.predict_mbps(context);
  EXPECT_GT(predicted, 40.0);
  EXPECT_LT(predicted, 600.0);
}

TEST(Gbdt, BeatsHarmonicMeanOnGeneratedTraces) {
  // The Fig. 18a premise: a trained predictor out-forecasts the harmonic
  // mean on mmWave dynamics. Evaluate one-step-ahead MAE over held-out
  // traces.
  Rng rng(3);
  auto config = wt::lumos5g_mmwave_config();
  config.count = 60;
  const auto training = wt::generate_traces(config, rng);
  Rng rng2(97);
  config.count = 15;
  const auto held_out = wt::generate_traces(config, rng2);

  wa::GbdtPredictor gbdt(5, 4.0);
  Rng train_rng(4);
  gbdt.train(training, train_rng);

  const auto video = wa::video_ladder_5g();
  wa::HarmonicMeanPredictor hm(5);

  // Score with the asymmetric loss that matters for rate adaptation:
  // overpredicting throughput triggers stalls (weight 3), underpredicting
  // merely loses some bitrate (weight 1).
  auto loss = [](double predicted, double future) {
    return 3.0 * std::max(0.0, predicted - future) +
           std::max(0.0, future - predicted);
  };
  double err_gbdt = 0.0;
  double err_hm = 0.0;
  int count = 0;
  for (const auto& trace : held_out) {
    wa::TraceSource session_source(trace);
    gbdt.on_session_start(session_source);  // resets prediction smoothing
    for (std::size_t t = 5; t + 4 < trace.mbps.size(); t += 3) {
      const std::span<const double> past(trace.mbps.data() + t - 5, 5);
      const auto context =
          make_context(video, past, static_cast<double>(t));
      double future = 0.0;
      for (std::size_t j = 0; j < 4; ++j) future += trace.mbps[t + j];
      future /= 4.0;
      err_gbdt += loss(gbdt.predict_mbps(context), future);
      err_hm += loss(hm.predict_mbps(context), future);
      ++count;
    }
  }
  ASSERT_GT(count, 100);
  EXPECT_LT(err_gbdt, err_hm);
}

TEST(Gbdt, UntrainedThrows) {
  const auto video = wa::video_ladder_5g();
  wa::GbdtPredictor gbdt;
  const std::vector<double> past{1.0};
  const auto context = make_context(video, past, 0.0);
  EXPECT_THROW((void)gbdt.predict_mbps(context), wild5g::Error);
}

TEST(RecentHarmonicMean, PadsAndFallsBack) {
  EXPECT_DOUBLE_EQ(wa::recent_harmonic_mean({}, 5, 42.0), 42.0);
  const std::vector<double> one{10.0};
  EXPECT_DOUBLE_EQ(wa::recent_harmonic_mean(one, 5, 42.0), 10.0);
}
