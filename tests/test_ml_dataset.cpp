// Tests for the ML dataset container and train/test splitting.
#include "ml/dataset.h"

#include <gtest/gtest.h>

#include "core/error.h"

using wild5g::Rng;
using wild5g::ml::Dataset;
using wild5g::ml::train_test_split;

namespace {
Dataset small_dataset(int rows) {
  Dataset data;
  data.feature_names = {"x", "y"};
  for (int i = 0; i < rows; ++i) {
    data.add({static_cast<double>(i), static_cast<double>(i * 2)},
             static_cast<double>(i));
  }
  return data;
}
}  // namespace

TEST(Dataset, AddValidatesArity) {
  Dataset data;
  data.feature_names = {"x", "y"};
  EXPECT_THROW(data.add({1.0}, 0.0), wild5g::Error);
  data.add({1.0, 2.0}, 3.0);
  EXPECT_EQ(data.size(), 1u);
  EXPECT_EQ(data.feature_count(), 2u);
}

TEST(Dataset, ValidateCatchesCorruption) {
  Dataset data = small_dataset(3);
  data.targets.pop_back();
  EXPECT_THROW(data.validate(), wild5g::Error);
}

TEST(Split, ProportionsRespected) {
  Rng rng(1);
  const auto split = train_test_split(small_dataset(100), 0.7, rng);
  EXPECT_EQ(split.train.size(), 70u);
  EXPECT_EQ(split.test.size(), 30u);
  EXPECT_EQ(split.train.feature_names, split.test.feature_names);
}

TEST(Split, DisjointAndComplete) {
  Rng rng(2);
  const auto data = small_dataset(50);
  const auto split = train_test_split(data, 0.6, rng);
  // Together they contain every original target exactly once.
  std::vector<double> all = split.train.targets;
  all.insert(all.end(), split.test.targets.begin(), split.test.targets.end());
  std::sort(all.begin(), all.end());
  for (std::size_t i = 0; i < all.size(); ++i) {
    EXPECT_DOUBLE_EQ(all[i], static_cast<double>(i));
  }
}

TEST(Split, DeterministicInSeed) {
  const auto data = small_dataset(40);
  Rng rng_a(7);
  Rng rng_b(7);
  const auto a = train_test_split(data, 0.5, rng_a);
  const auto b = train_test_split(data, 0.5, rng_b);
  EXPECT_EQ(a.train.targets, b.train.targets);
}

TEST(Split, RejectsDegenerateFractions) {
  Rng rng(3);
  const auto data = small_dataset(10);
  EXPECT_THROW((void)train_test_split(data, 0.0, rng), wild5g::Error);
  EXPECT_THROW((void)train_test_split(data, 1.0, rng), wild5g::Error);
}
