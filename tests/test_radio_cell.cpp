// Tests for the per-cell scheduler model (PRB/airtime allocation).
#include "radio/cell.h"

#include <gtest/gtest.h>

#include "core/error.h"

namespace wr = wild5g::radio;

namespace {

wr::CellScheduler make_cell(double background_load = 0.0,
                            wr::Band band = wr::Band::kLte) {
  return wr::CellScheduler(
      {.band = band, .background_load = background_load});
}

}  // namespace

TEST(CellScheduler, AttachAssignsSequentialSlots) {
  auto cell = make_cell();
  EXPECT_EQ(cell.attached_count(), 0);
  EXPECT_EQ(cell.attach(), 0);
  EXPECT_EQ(cell.attach(), 1);
  EXPECT_EQ(cell.attach(), 2);
  EXPECT_EQ(cell.attached_count(), 3);
  EXPECT_TRUE(cell.is_attached(1));
}

TEST(CellScheduler, DetachFreesAndReusesSlotsLifo) {
  auto cell = make_cell();
  (void)cell.attach();  // 0
  (void)cell.attach();  // 1
  (void)cell.attach();  // 2
  cell.detach(1);
  cell.detach(0);
  EXPECT_EQ(cell.attached_count(), 1);
  EXPECT_FALSE(cell.is_attached(0));
  EXPECT_FALSE(cell.is_attached(1));
  // LIFO reuse: the most recently freed slot comes back first, so the
  // attach/detach history fully determines every slot id.
  EXPECT_EQ(cell.attach(), 0);
  EXPECT_EQ(cell.attach(), 1);
  EXPECT_EQ(cell.attached_count(), 3);
}

TEST(CellScheduler, DetachOfFreeSlotThrows) {
  auto cell = make_cell();
  EXPECT_THROW(cell.detach(0), wild5g::Error);
  const int slot = cell.attach();
  cell.detach(slot);
  EXPECT_THROW(cell.detach(slot), wild5g::Error);
  EXPECT_THROW(cell.detach(-1), wild5g::Error);
}

TEST(CellScheduler, AirtimeSplitsEquallyAfterBackground) {
  const auto cell = make_cell(0.2);
  EXPECT_DOUBLE_EQ(cell.airtime_share(1), 0.8);
  EXPECT_DOUBLE_EQ(cell.airtime_share(4), 0.2);
  // Zero active UEs: the would-be share of the next arrival.
  EXPECT_DOUBLE_EQ(cell.airtime_share(0), 0.8);
  EXPECT_THROW((void)cell.airtime_share(-1), wild5g::Error);
}

TEST(CellScheduler, PrbGridMatchesBandNumerology) {
  // 20 MHz LTE at 15 kHz SCS with 10% guard: the canonical 100-PRB grid.
  const auto lte = make_cell(0.0, wr::Band::kLte);
  EXPECT_EQ(lte.total_prbs(), 100);
  EXPECT_EQ(lte.prbs_per_ue(1), 100);
  EXPECT_EQ(lte.prbs_per_ue(4), 25);
  EXPECT_EQ(lte.prbs_per_ue(3), 33);  // floor; remainder PRBs cycle
  // An explicit PRB count overrides the derivation.
  const wr::CellScheduler fixed({.band = wr::Band::kLte, .total_prbs = 50});
  EXPECT_EQ(fixed.total_prbs(), 50);
  EXPECT_EQ(fixed.prbs_per_ue(2), 25);
}

TEST(CellScheduler, UtilizationSaturatesWithAnyActiveUe) {
  const auto idle = make_cell(0.3);
  EXPECT_DOUBLE_EQ(idle.utilization(0), 0.3);
  EXPECT_DOUBLE_EQ(idle.utilization(1), 1.0);
  EXPECT_DOUBLE_EQ(idle.utilization(100), 1.0);
  // Unloaded idle cell: exactly 0.0, the bit-identical-goldens anchor.
  EXPECT_EQ(make_cell(0.0).utilization(0), 0.0);
}

TEST(CellScheduler, SoloUnloadedUeMatchesLoadedLinkCapacity) {
  const auto cell = make_cell();
  const wr::NetworkConfig network{wr::Carrier::kVerizon, wr::Band::kLte,
                                  wr::DeploymentMode::kNsa};
  const auto ue = wr::pixel5();
  const double rsrp = -90.0;
  // One full-buffer UE saturates the cell, so it sees the whole loaded
  // capacity (utilization 1) — not the unloaded link_capacity_mbps.
  EXPECT_DOUBLE_EQ(
      cell.ue_throughput_mbps(network, ue, wr::Direction::kDownlink, rsrp, 1),
      wr::loaded_link_capacity_mbps(network, ue, wr::Direction::kDownlink,
                                    rsrp, 1.0));
}

TEST(CellScheduler, ThroughputMonotoneInSharersAndBackground) {
  const wr::NetworkConfig network{wr::Carrier::kVerizon, wr::Band::kLte,
                                  wr::DeploymentMode::kNsa};
  const auto ue = wr::pixel5();
  const double rsrp = -95.0;
  const auto cell = make_cell();
  double prev = 1e18;
  for (const int sharers : {1, 2, 10, 100}) {
    const double tput = cell.ue_throughput_mbps(
        network, ue, wr::Direction::kDownlink, rsrp, sharers);
    EXPECT_LT(tput, prev);
    prev = tput;
  }
  const double loaded =
      make_cell(0.5).ue_throughput_mbps(network, ue,
                                        wr::Direction::kDownlink, rsrp, 1);
  const double unloaded =
      cell.ue_throughput_mbps(network, ue, wr::Direction::kDownlink, rsrp, 1);
  EXPECT_LT(loaded, unloaded);
  EXPECT_THROW((void)cell.ue_throughput_mbps(
                   network, ue, wr::Direction::kDownlink, rsrp, 0),
               wild5g::Error);
}

TEST(CellScheduler, RejectsInvalidConfig) {
  EXPECT_THROW(wr::CellScheduler({.background_load = 1.0}), wild5g::Error);
  EXPECT_THROW(wr::CellScheduler({.background_load = -0.1}), wild5g::Error);
  EXPECT_THROW(wr::CellScheduler({.total_prbs = -1}), wild5g::Error);
}
