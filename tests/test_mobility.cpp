// Tests for routes and the Fig. 9 drive/handoff simulation.
#include "mobility/drive.h"
#include "mobility/route.h"

#include <gtest/gtest.h>

#include "core/error.h"
#include "core/rng.h"

namespace wm = wild5g::mobility;
using wild5g::Rng;

TEST(Route, WalkingLoopMatchesPaper) {
  const auto route = wm::walking_loop();
  EXPECT_NEAR(route.length_m(), 1600.0, 1.0);
  EXPECT_NEAR(route.duration_s(), 1200.0, 1.0);
}

TEST(Route, PositionMonotoneAndClamped) {
  const auto route = wm::walking_loop();
  double prev = -1.0;
  for (double t = 0.0; t <= route.duration_s() + 100.0; t += 10.0) {
    const double pos = route.position_m(t);
    EXPECT_GE(pos, prev);
    prev = pos;
  }
  EXPECT_NEAR(route.position_m(route.duration_s() + 1000.0),
              route.length_m(), 1e-6);
}

TEST(Route, RejectsInvalidLegs) {
  EXPECT_THROW(wm::Route({}), wild5g::Error);
  EXPECT_THROW(wm::Route({{-1.0, 10.0}}), wild5g::Error);
  EXPECT_THROW(wm::Route({{1.0, 0.0}}), wild5g::Error);
}

TEST(Route, DrivingRouteNormalizedTo10kmIn600s) {
  Rng rng(1);
  const auto route = wm::driving_route(rng);
  EXPECT_NEAR(route.length_m(), 10000.0, 1.0);
  EXPECT_NEAR(route.duration_s(), 600.0, 1.0);
}

TEST(Route, DrivingRouteSpeedsWithinLimits) {
  Rng rng(2);
  const auto route = wm::driving_route(rng);
  for (double t = 1.0; t < route.duration_s(); t += 1.0) {
    const double v = route.position_m(t) - route.position_m(t - 1.0);
    EXPECT_GE(v, -1e-9);
    EXPECT_LT(v, 29.0);  // < ~104 kph after normalization
  }
}

namespace {
wm::DriveResult drive(wm::BandSetting setting, std::uint64_t seed) {
  Rng rng(seed);
  const auto route = wm::driving_route(rng);
  return wm::simulate_drive(setting, route, {}, rng);
}
}  // namespace

TEST(Drive, SaOnlyHasFewHandoffsAllHorizontal) {
  const auto result = drive(wm::BandSetting::kSaOnly, 10);
  EXPECT_EQ(result.vertical_handoffs(), 0);
  EXPECT_GE(result.total_handoffs(), 7);
  EXPECT_LE(result.total_handoffs(), 22);
  EXPECT_NEAR(result.time_fraction(wm::ActiveRadio::kSa5g), 1.0, 1e-9);
}

TEST(Drive, NsaDominatedByVerticalHandoffs) {
  const auto result = drive(wm::BandSetting::kNsaPlusLte, 10);
  // Paper: ~110 total, ~90 vertical.
  EXPECT_GT(result.vertical_handoffs(), 55);
  EXPECT_GT(result.total_handoffs(), 75);
  EXPECT_LT(result.total_handoffs(), 165);
  EXPECT_GT(result.vertical_handoffs(), result.horizontal_handoffs());
}

TEST(Drive, PaperOrderingAcrossSettings) {
  // Fig. 9: SA(13) < LTE(30) < SA+LTE(38) < All(64) < NSA+LTE(110).
  // Average over seeds to damp run-to-run noise.
  auto avg_total = [](wm::BandSetting setting) {
    double total = 0.0;
    for (std::uint64_t seed : {1ull, 2ull, 3ull, 4ull, 5ull}) {
      Rng rng(seed);
      const auto route = wm::driving_route(rng);
      total += wm::simulate_drive(setting, route, {}, rng).total_handoffs();
    }
    return total / 5.0;
  };
  const double sa = avg_total(wm::BandSetting::kSaOnly);
  const double lte = avg_total(wm::BandSetting::kLteOnly);
  const double sa_lte = avg_total(wm::BandSetting::kSaPlusLte);
  const double all = avg_total(wm::BandSetting::kAllBands);
  const double nsa = avg_total(wm::BandSetting::kNsaPlusLte);
  EXPECT_LT(sa, lte);
  EXPECT_LT(lte, sa_lte + 8.0);  // close in the paper (30 vs 38)
  EXPECT_LT(sa_lte, all);
  EXPECT_LT(all, nsa);
}

TEST(Drive, SegmentsTileTheTimeline) {
  const auto result = drive(wm::BandSetting::kAllBands, 11);
  ASSERT_FALSE(result.segments.empty());
  EXPECT_DOUBLE_EQ(result.segments.front().start_s, 0.0);
  for (std::size_t i = 1; i < result.segments.size(); ++i) {
    EXPECT_DOUBLE_EQ(result.segments[i].start_s,
                     result.segments[i - 1].end_s);
  }
  EXPECT_NEAR(result.segments.back().end_s, 600.0, 1.0);
}

TEST(Drive, VerticalEventsChangeRadio) {
  const auto result = drive(wm::BandSetting::kNsaPlusLte, 12);
  for (const auto& handoff : result.handoffs) {
    if (handoff.vertical) {
      EXPECT_NE(handoff.from, handoff.to);
    } else {
      EXPECT_EQ(handoff.from, handoff.to);
    }
  }
}

TEST(Drive, LteOnlyNeverUses5g) {
  const auto result = drive(wm::BandSetting::kLteOnly, 13);
  EXPECT_NEAR(result.time_fraction(wm::ActiveRadio::kLte), 1.0, 1e-9);
  EXPECT_EQ(result.vertical_handoffs(), 0);
}

TEST(Drive, DeterministicInSeed) {
  const auto a = drive(wm::BandSetting::kAllBands, 77);
  const auto b = drive(wm::BandSetting::kAllBands, 77);
  EXPECT_EQ(a.total_handoffs(), b.total_handoffs());
  EXPECT_EQ(a.vertical_handoffs(), b.vertical_handoffs());
}
