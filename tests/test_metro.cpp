// Tests for the sharded multi-UE metro campaign driver: the determinism
// contract (byte-identical at any thread count), the contention physics
// (per-user throughput monotone in load and sharers), co-moving handoff
// storms, the sketch-bounded memory budget, and the fault surface.
//
// Suite names carry "Metro" so the CI TSan job's regex picks the parallel
// campaigns up alongside the Parallel/GoldenDeterminism suites.
#include "metro/metro.h"

#include <gtest/gtest.h>

#include "core/error.h"
#include "core/parallel.h"

namespace wm = wild5g::metro;
namespace wf = wild5g::faults;
using wild5g::Rng;

namespace {

/// Small-but-real campaign: 10 cells x 100 UEs = 1000 UEs, 40 steps.
wm::MetroConfig small_campaign() {
  wm::MetroConfig config;
  config.cells = 10;
  config.ues_per_cell = 100;
  config.duration_s = 20.0;
  config.step_s = 0.5;
  return config;
}

/// Runs `config` at a forced thread count, restoring auto afterwards.
wm::MetroResult run_at(const wm::MetroConfig& config, std::size_t threads) {
  wild5g::parallel::set_thread_count(threads);
  auto result = wm::run_campaign(config, Rng(99));
  wild5g::parallel::set_thread_count(0);
  return result;
}

wf::FaultPlan plan_with(wf::FaultKind kind, double start_s, double duration_s,
                        double magnitude) {
  wf::FaultPlan plan;
  plan.name = "test";
  plan.windows.push_back({kind, start_s, duration_s, magnitude});
  plan.validate();
  return plan;
}

}  // namespace

TEST(MetroDeterminism, ByteIdenticalAcrossThreadCounts) {
  const auto config = small_campaign();
  const auto serial = run_at(config, 1);
  const auto threaded = run_at(config, 8);

  EXPECT_EQ(serial.ues, 1000);
  EXPECT_EQ(serial.steps, 40);
  EXPECT_EQ(serial.handoffs, threaded.handoffs);
  EXPECT_EQ(serial.pingpongs, threaded.pingpongs);
  EXPECT_EQ(serial.peak_step_handoffs, threaded.peak_step_handoffs);
  EXPECT_EQ(serial.peak_cell_active, threaded.peak_cell_active);
  EXPECT_EQ(serial.attach_ops, threaded.attach_ops);
  // Exact equality throughout: the contract is bit-identical, not close.
  EXPECT_EQ(serial.mean_utilization, threaded.mean_utilization);
  EXPECT_EQ(serial.per_ue_mean_mbps.count(),
            threaded.per_ue_mean_mbps.count());
  EXPECT_EQ(serial.per_ue_mean_mbps.mean(), threaded.per_ue_mean_mbps.mean());
  EXPECT_EQ(serial.per_ue_mean_mbps.min(), threaded.per_ue_mean_mbps.min());
  EXPECT_EQ(serial.per_ue_mean_mbps.max(), threaded.per_ue_mean_mbps.max());
  for (const double p : {5.0, 50.0, 95.0}) {
    EXPECT_EQ(serial.per_ue_mean_mbps.percentile(p),
              threaded.per_ue_mean_mbps.percentile(p));
    EXPECT_EQ(serial.step_throughput_mbps.percentile(p),
              threaded.step_throughput_mbps.percentile(p));
    EXPECT_EQ(serial.per_ue_rebuffer_fraction.percentile(p),
              threaded.per_ue_rebuffer_fraction.percentile(p));
  }
}

TEST(MetroDeterminism, SameSeedRepeatsDifferentSeedDiffers) {
  const auto config = small_campaign();
  const auto a = wm::run_campaign(config, Rng(7));
  const auto b = wm::run_campaign(config, Rng(7));
  EXPECT_EQ(a.per_ue_mean_mbps.mean(), b.per_ue_mean_mbps.mean());
  EXPECT_EQ(a.handoffs, b.handoffs);
  const auto c = wm::run_campaign(config, Rng(8));
  EXPECT_NE(a.per_ue_mean_mbps.mean(), c.per_ue_mean_mbps.mean());
}

TEST(MetroCampaign, ThroughputMonotoneInBackgroundLoad) {
  auto config = small_campaign();
  double prev = 1e18;
  for (const double load : {0.0, 0.3, 0.6, 0.9}) {
    config.background_load = load;
    const auto result = wm::run_campaign(config, Rng(42));
    EXPECT_LT(result.per_ue_mean_mbps.mean(), prev)
        << "per-user throughput must fall as background load rises";
    prev = result.per_ue_mean_mbps.mean();
  }
}

TEST(MetroCampaign, ThroughputMonotoneInSharers) {
  auto config = small_campaign();
  double prev = 1e18;
  for (const int sharers : {1, 10, 50}) {
    config.ues_per_cell = sharers;
    const auto result = wm::run_campaign(config, Rng(42));
    EXPECT_LT(result.per_ue_mean_mbps.mean(), prev)
        << "per-user throughput must fall as the cell is shared wider";
    prev = result.per_ue_mean_mbps.mean();
  }
}

TEST(MetroCampaign, CoMovingPopulationHandsOffInStorms) {
  auto config = small_campaign();
  config.ue_speed_mps = 14.0;  // vehicular: everyone crosses edges together
  config.handoff.time_to_trigger_ms = 160.0;
  const auto result = wm::run_campaign(config, Rng(5));
  EXPECT_GT(result.handoffs, 0);
  // The storm signature: many UEs complete a handoff in the same step.
  EXPECT_GE(result.peak_step_handoffs, 5);
  // A stationary population sees no storms of comparable depth.
  config.ue_speed_mps = 0.0;
  config.handoff.shadowing_sigma_db = 0.5;
  const auto parked = wm::run_campaign(config, Rng(5));
  EXPECT_LT(parked.peak_step_handoffs, result.peak_step_handoffs);
}

TEST(MetroCampaign, LedgerFlowsEveryUeThroughAttach) {
  const auto result = wm::run_campaign(small_campaign(), Rng(3));
  // Step 0 attaches the whole population; churn adds more operations.
  EXPECT_GE(result.attach_ops, result.ues);
  EXPECT_GE(result.peak_cell_active, 1);
  EXPECT_LE(result.peak_cell_active, result.ues);
}

TEST(MetroCampaign, MemoryStaysSketchBounded) {
  auto config = small_campaign();
  const auto result = wm::run_campaign(config, Rng(11));
  // 1000 UEs x 40 steps = 40k step samples: far past the exact limit, so
  // the accumulator must have spilled to the sketch...
  EXPECT_GT(result.step_throughput_mbps.count(), 8192u);
  EXPECT_FALSE(result.step_throughput_mbps.exact());
  // ...and sketch memory is O(bucket range), not O(samples).
  EXPECT_LT(result.step_throughput_mbps.memory_bytes(), 256u * 1024u);
  EXPECT_LT(result.per_ue_rebuffer_fraction.memory_bytes(), 256u * 1024u);
}

TEST(MetroCampaign, PartialActivityScalesTheActivePopulation) {
  auto config = small_campaign();
  config.activity = 0.5;
  const auto result = wm::run_campaign(config, Rng(21));
  // Half-duty UEs: roughly half the step samples of the always-on run.
  const auto full = wm::run_campaign(small_campaign(), Rng(21));
  EXPECT_LT(result.step_throughput_mbps.count(),
            full.step_throughput_mbps.count());
  // Fewer simultaneous sharers -> each active step is faster on average.
  EXPECT_GT(result.step_throughput_mbps.percentile(50.0),
            full.step_throughput_mbps.percentile(50.0));
}

TEST(MetroCampaign, RejectsInvalidConfig) {
  auto bad = small_campaign();
  bad.cells = 0;
  EXPECT_THROW((void)wm::run_campaign(bad, Rng(1)), wild5g::Error);
  bad = small_campaign();
  bad.ues_per_cell = 0;
  EXPECT_THROW((void)wm::run_campaign(bad, Rng(1)), wild5g::Error);
  bad = small_campaign();
  bad.activity = 1.5;
  EXPECT_THROW((void)wm::run_campaign(bad, Rng(1)), wild5g::Error);
  bad = small_campaign();
  bad.background_load = 1.0;
  EXPECT_THROW((void)wm::run_campaign(bad, Rng(1)), wild5g::Error);
  bad = small_campaign();
  bad.step_s = 0.0;
  EXPECT_THROW((void)wm::run_campaign(bad, Rng(1)), wild5g::Error);
}

TEST(MetroFaults, UnsupportedKindsAreListedAndRejected) {
  const auto plan =
      plan_with(wf::FaultKind::kLatencySpike, 1.0, 2.0, 30.0);
  const auto bad = wm::unsupported_fault_kinds(plan);
  ASSERT_EQ(bad.size(), 1u);
  EXPECT_EQ(bad.front(), wf::FaultKind::kLatencySpike);

  const wf::Injector injector(plan, 99);
  auto config = small_campaign();
  config.faults = &injector;
  EXPECT_THROW((void)wm::run_campaign(config, Rng(1)), wild5g::Error);
}

TEST(MetroFaults, RadioKindsAreSupported) {
  wf::FaultPlan plan;
  plan.name = "radio_only";
  plan.windows.push_back({wf::FaultKind::kMmwaveBlockage, 2.0, 4.0, 12.0});
  plan.windows.push_back({wf::FaultKind::kNrToLteOutage, 8.0, 4.0, 0.2});
  plan.windows.push_back({wf::FaultKind::kRadioOutage, 14.0, 2.0, 0.0});
  plan.validate();
  EXPECT_TRUE(wm::unsupported_fault_kinds(plan).empty());

  const wf::Injector injector(plan, 99);
  auto config = small_campaign();
  config.faults = &injector;
  const auto faulted = wm::run_campaign(config, Rng(6));
  const auto clean = wm::run_campaign(small_campaign(), Rng(6));
  // The same draws run underneath, so faults only remove throughput.
  EXPECT_LT(faulted.per_ue_mean_mbps.mean(), clean.per_ue_mean_mbps.mean());
  EXPECT_EQ(faulted.handoffs, clean.handoffs);
}

TEST(MetroFaults, TotalRadioOutageZeroesThroughput) {
  const auto plan = plan_with(wf::FaultKind::kRadioOutage, 0.0, 1e6, 0.0);
  const wf::Injector injector(plan, 99);
  auto config = small_campaign();
  config.faults = &injector;
  const auto result = wm::run_campaign(config, Rng(2));
  EXPECT_EQ(result.per_ue_mean_mbps.max(), 0.0);
  // Nothing delivered, everything demanded: rebuffering is total.
  EXPECT_EQ(result.per_ue_rebuffer_fraction.min(), 1.0);
}

TEST(MetroFaults, FaultedCampaignIsThreadCountInvariant) {
  const auto plan =
      plan_with(wf::FaultKind::kMmwaveBlockage, 3.0, 10.0, 15.0);
  const wf::Injector injector(plan, 99);
  auto config = small_campaign();
  config.faults = &injector;
  const auto serial = run_at(config, 1);
  const auto threaded = run_at(config, 8);
  EXPECT_EQ(serial.per_ue_mean_mbps.mean(), threaded.per_ue_mean_mbps.mean());
  EXPECT_EQ(serial.per_ue_mean_mbps.percentile(95.0),
            threaded.per_ue_mean_mbps.percentile(95.0));
  EXPECT_EQ(serial.handoffs, threaded.handoffs);
}
