// Tests for the DASH streaming engine and the video ladders.
#include "abr/session.h"

#include <gtest/gtest.h>

#include "abr/algorithms.h"
#include "abr/video.h"
#include "core/error.h"

namespace wa = wild5g::abr;
namespace wt = wild5g::traces;

namespace {

/// Fixed-track "algorithm" for engine tests.
class FixedTrack final : public wa::AbrAlgorithm {
 public:
  explicit FixedTrack(int track) : track_(track) {}
  [[nodiscard]] std::string name() const override { return "fixed"; }
  [[nodiscard]] int choose_track(const wa::AbrContext&) override {
    return track_;
  }

 private:
  int track_;
};

wt::Trace constant_trace(double mbps, int seconds) {
  wt::Trace trace;
  trace.id = "const";
  trace.mbps.assign(static_cast<std::size_t>(seconds), mbps);
  return trace;
}

}  // namespace

TEST(Ladder, PaperLadders) {
  const auto v5 = wa::video_ladder_5g();
  ASSERT_EQ(v5.track_count(), 6);
  EXPECT_DOUBLE_EQ(v5.top_mbps(), 160.0);
  // Adjacent tracks differ by ~1.5x.
  for (int i = 1; i < v5.track_count(); ++i) {
    EXPECT_NEAR(v5.bitrate(i) / v5.bitrate(i - 1), 1.5, 1e-9);
  }
  const auto v4 = wa::video_ladder_4g();
  EXPECT_DOUBLE_EQ(v4.top_mbps(), 20.0);
  EXPECT_NEAR(v4.track_mbps.front(), 20.0 / std::pow(1.5, 5), 1e-9);
}

TEST(Ladder, BitrateRangeChecked) {
  const auto v = wa::video_ladder_5g();
  EXPECT_THROW((void)v.bitrate(-1), wild5g::Error);
  EXPECT_THROW((void)v.bitrate(6), wild5g::Error);
}

TEST(Session, NoStallsWithAmpleBandwidth) {
  const auto video = wa::video_ladder_5g();
  const auto trace = constant_trace(1000.0, 400);
  wa::TraceSource source(trace);
  FixedTrack top(5);
  wa::SessionOptions options;
  options.chunk_count = 30;
  const auto result = wa::stream(video, source, top, options);
  EXPECT_DOUBLE_EQ(result.total_stall_s, 0.0);
  EXPECT_DOUBLE_EQ(result.stall_percent(), 0.0);
  EXPECT_DOUBLE_EQ(result.avg_bitrate_mbps, 160.0);
  EXPECT_DOUBLE_EQ(result.normalized_bitrate(video), 1.0);
  EXPECT_EQ(result.chunks.size(), 30u);
}

TEST(Session, StallsWhenBandwidthBelowBitrate) {
  const auto video = wa::video_ladder_5g();
  // 80 Mbps link, top track 160 Mbps: every chunk takes 2x its duration.
  const auto trace = constant_trace(80.0, 2000);
  wa::TraceSource source(trace);
  FixedTrack top(5);
  wa::SessionOptions options;
  options.chunk_count = 20;
  const auto result = wa::stream(video, source, top, options);
  EXPECT_GT(result.total_stall_s, 50.0);
  EXPECT_GT(result.stall_percent(), 30.0);
}

TEST(Session, StartupDelayNotCountedAsStall) {
  const auto video = wa::video_ladder_5g();
  const auto trace = constant_trace(160.0, 1000);
  wa::TraceSource source(trace);
  FixedTrack top(5);
  wa::SessionOptions options;
  options.chunk_count = 10;
  const auto result = wa::stream(video, source, top, options);
  // Startup buffers 8 s (two 4 s chunks) at link rate = bitrate.
  EXPECT_NEAR(result.startup_delay_s, 8.0, 0.1);
  EXPECT_DOUBLE_EQ(result.total_stall_s, 0.0);
}

TEST(Session, BufferNeverExceedsCap) {
  const auto video = wa::video_ladder_5g();
  const auto trace = constant_trace(5000.0, 1000);
  wa::TraceSource source(trace);
  FixedTrack lowest(0);
  wa::SessionOptions options;
  options.chunk_count = 40;
  options.max_buffer_s = 30.0;
  const auto result = wa::stream(video, source, lowest, options);
  for (const auto& chunk : result.chunks) {
    EXPECT_LE(chunk.buffer_after_s, options.max_buffer_s + 1e-9);
  }
}

TEST(Session, PerSecondConsumptionIntegratesToTotalBits) {
  const auto video = wa::video_ladder_5g();
  const auto trace = constant_trace(200.0, 1000);
  wa::TraceSource source(trace);
  FixedTrack mid(3);
  wa::SessionOptions options;
  options.chunk_count = 25;
  const auto result = wa::stream(video, source, mid, options);
  double recorded = 0.0;
  for (double mbits : result.per_second_dl_mbps) recorded += mbits;
  const double expected =
      25.0 * video.bitrate(3) * video.chunk_s;  // megabits downloaded
  EXPECT_NEAR(recorded, expected, 1e-6);
}

TEST(Session, QoeRewardsBitratePenalizesStallAndSwitches) {
  const auto video = wa::video_ladder_5g();
  const auto trace = constant_trace(1000.0, 1000);
  wa::TraceSource source(trace);
  wa::SessionOptions options;
  options.chunk_count = 10;

  FixedTrack top(5);
  const auto steady = wa::stream(video, source, top, options);

  // An oscillating policy must score lower through the smoothness term.
  class Oscillate final : public wa::AbrAlgorithm {
   public:
    [[nodiscard]] std::string name() const override { return "osc"; }
    [[nodiscard]] int choose_track(const wa::AbrContext& context) override {
      return context.next_chunk % 2 == 0 ? 5 : 0;
    }
  } oscillate;
  const auto wobbly = wa::stream(video, source, oscillate, options);
  EXPECT_GT(steady.qoe, wobbly.qoe);
}

TEST(Session, SurvivesZeroBandwidthTail) {
  // Trace that collapses to zero: the engine's floor keeps progress.
  wt::Trace trace;
  trace.mbps.assign(10, 100.0);
  trace.mbps.resize(60, 0.0);
  wa::TraceSource source(trace);
  const auto video = wa::video_ladder_4g();
  FixedTrack lowest(0);
  wa::SessionOptions options;
  options.chunk_count = 8;
  const auto result = wa::stream(video, source, lowest, options);
  EXPECT_EQ(result.chunks.size(), 8u);  // terminates
}

TEST(Session, InvalidOptionsRejected) {
  const auto video = wa::video_ladder_5g();
  const auto trace = constant_trace(100.0, 10);
  wa::TraceSource source(trace);
  FixedTrack top(5);
  wa::SessionOptions options;
  options.chunk_count = 0;
  EXPECT_THROW((void)wa::stream(video, source, top, options), wild5g::Error);
}

TEST(Session, ChoiceClampedToLadder) {
  const auto video = wa::video_ladder_5g();
  const auto trace = constant_trace(1000.0, 200);
  wa::TraceSource source(trace);
  FixedTrack wild(99);
  wa::SessionOptions options;
  options.chunk_count = 5;
  const auto result = wa::stream(video, source, wild, options);
  for (const auto& chunk : result.chunks) {
    EXPECT_EQ(chunk.track, 5);
  }
}

TEST(Session, AbandonmentAbortsCrawlingChunk) {
  // Bandwidth collapses right after the first chunks: with abandonment on,
  // the engine aborts the high-track attempt and refetches lower.
  wt::Trace trace;
  trace.mbps.assign(5, 500.0);
  trace.mbps.resize(300, 2.0);  // collapse at t=5
  wa::TraceSource source(trace);
  const auto video = wa::video_ladder_5g();
  FixedTrack top(5);
  wa::SessionOptions options;
  options.chunk_count = 8;
  options.allow_abandonment = true;
  const auto result = wa::stream(video, source, top, options);
  int abandoned = 0;
  for (const auto& chunk : result.chunks) {
    abandoned += chunk.abandoned_attempts;
  }
  EXPECT_GT(abandoned, 0);
}

TEST(Session, AbandonmentOffNeverAborts) {
  wt::Trace trace;
  trace.mbps.assign(20, 500.0);
  trace.mbps.resize(300, 2.0);
  wa::TraceSource source(trace);
  const auto video = wa::video_ladder_5g();
  FixedTrack mid(2);
  wa::SessionOptions options;
  options.chunk_count = 6;
  options.allow_abandonment = false;
  const auto result = wa::stream(video, source, mid, options);
  for (const auto& chunk : result.chunks) {
    EXPECT_EQ(chunk.abandoned_attempts, 0);
  }
}

TEST(Session, ResumeThresholdConsolidatesStalls) {
  // After a rebuffer the player waits for resume_buffer_s before playing:
  // stalls consolidate instead of dribbling one per chunk.
  wt::Trace trace;
  trace.mbps.assign(400, 18.0);  // just below the lowest track (21.1)
  wa::TraceSource source(trace);
  const auto video = wa::video_ladder_5g();
  FixedTrack lowest(0);
  wa::SessionOptions options;
  options.chunk_count = 30;
  options.resume_buffer_s = 8.0;
  const auto result = wa::stream(video, source, lowest, options);
  // With an 8 s resume threshold, stall chunks come in runs; count distinct
  // stall events (transitions from no-stall to stall).
  int events = 0;
  bool in_stall = false;
  for (const auto& chunk : result.chunks) {
    const bool stalled = chunk.stall_s > 0.0;
    if (stalled && !in_stall) ++events;
    in_stall = stalled;
  }
  EXPECT_GT(result.total_stall_s, 0.0);
  EXPECT_LT(events, 8);  // consolidated, not 1 event per chunk
}

TEST(Session, StartupTargetRespectsShortVideos) {
  // startup_buffer_s larger than the whole video must not deadlock.
  const auto video = wa::video_ladder_4g();
  const auto trace = constant_trace(100.0, 300);
  wa::TraceSource source(trace);
  FixedTrack lowest(0);
  wa::SessionOptions options;
  options.chunk_count = 2;
  options.startup_buffer_s = 1000.0;
  const auto result = wa::stream(video, source, lowest, options);
  EXPECT_EQ(result.chunks.size(), 2u);
}
