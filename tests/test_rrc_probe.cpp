// Tests for RRC-Probe: the ladder runner and the timer-inference algorithm.
#include "rrc/probe.h"

#include <gtest/gtest.h>

#include "core/error.h"
#include "core/rng.h"

namespace wr = wild5g::rrc;
using wild5g::Rng;

TEST(Probe, LadderShapeAndGroundTruthStates) {
  const auto& config = wr::profile_by_name("Verizon 4G").config;
  wr::ProbeSchedule schedule;
  schedule.repeats = 3;
  Rng rng(1);
  const auto samples = wr::run_probe(config, schedule, rng);
  // 200..16000 in 200 ms steps = 80 gaps x 3 repeats.
  EXPECT_EQ(samples.size(), 80u * 3u);
  for (const auto& s : samples) {
    EXPECT_GT(s.rtt_ms, 0.0);
    EXPECT_EQ(s.true_state, wr::state_after_gap(config, s.gap_ms));
  }
}

TEST(Probe, ScheduleForExtendsPastLastBoundary) {
  const auto& dss = wr::profile_by_name("Verizon NSA low-band (DSS)").config;
  const auto schedule = wr::schedule_for(dss);
  EXPECT_GT(schedule.max_gap_ms, 18800.0);  // paper probes DSS to ~40 s
  const auto& sa = wr::profile_by_name("T-Mobile SA low-band").config;
  EXPECT_GT(wr::schedule_for(sa).max_gap_ms, 15400.0);
}

TEST(Probe, InferenceRejectsDegenerateInput) {
  EXPECT_THROW((void)wr::infer_rrc_parameters({}), wild5g::Error);
}

// The core validation: inference recovers the configured tail timer for
// every network in Table 7, blind to the generating config.
class InferAllProfiles : public ::testing::TestWithParam<std::size_t> {};

TEST_P(InferAllProfiles, TailTimerRecovered) {
  const auto& config = wr::table7_profiles()[GetParam()].config;
  const auto schedule = wr::schedule_for(config);
  Rng rng(42 + GetParam());
  const auto samples = wr::run_probe(config, schedule, rng);
  const auto inferred = wr::infer_rrc_parameters(samples);
  // Within three ladder steps of the configured timer.
  EXPECT_NEAR(inferred.tail_timer_ms, config.inactivity_timer_ms,
              3.0 * schedule.step_ms)
      << config.name;
}

INSTANTIATE_TEST_SUITE_P(Table7, InferAllProfiles,
                         ::testing::Values(0u, 1u, 2u, 3u, 4u, 5u));

TEST(Probe, SaInactivePlateauDetected) {
  const auto& config = wr::profile_by_name("T-Mobile SA low-band").config;
  Rng rng(7);
  const auto samples = wr::run_probe(config, wr::schedule_for(config), rng);
  const auto inferred = wr::infer_rrc_parameters(samples);
  ASSERT_TRUE(inferred.mid_plateau_end_ms.has_value());
  // INACTIVE ends at tail + hold = 15.4 s.
  EXPECT_NEAR(*inferred.mid_plateau_end_ms,
              config.inactivity_timer_ms + *config.inactive_hold_ms, 800.0);
  // Mid level sits between connected and idle levels.
  ASSERT_TRUE(inferred.mid_level_rtt_ms.has_value());
  EXPECT_GT(*inferred.mid_level_rtt_ms, inferred.connected_level_rtt_ms);
  EXPECT_LT(*inferred.mid_level_rtt_ms, inferred.idle_level_rtt_ms);
}

TEST(Probe, NoMidPlateauOn4g) {
  const auto& config = wr::profile_by_name("T-Mobile 4G").config;
  Rng rng(8);
  const auto samples = wr::run_probe(config, wr::schedule_for(config), rng);
  const auto inferred = wr::infer_rrc_parameters(samples);
  EXPECT_FALSE(inferred.mid_plateau_end_ms.has_value());
}

TEST(Probe, PromotionEstimateTracksConfig) {
  const auto& config = wr::profile_by_name("Verizon NSA mmWave").config;
  Rng rng(9);
  const auto samples = wr::run_probe(config, wr::schedule_for(config), rng);
  const auto inferred = wr::infer_rrc_parameters(samples);
  EXPECT_NEAR(inferred.promotion_estimate_ms, *config.promotion_5g_ms,
              0.25 * *config.promotion_5g_ms);
}

TEST(Probe, DrxEstimatesScaleWithConfig) {
  // SA low-band has a tiny 40 ms long-DRX; Verizon NSA low-band has 400 ms.
  Rng rng(10);
  const auto& sa = wr::profile_by_name("T-Mobile SA low-band").config;
  const auto& dss = wr::profile_by_name("Verizon NSA low-band (DSS)").config;
  const auto inferred_sa = wr::infer_rrc_parameters(
      wr::run_probe(sa, wr::schedule_for(sa), rng));
  const auto inferred_dss = wr::infer_rrc_parameters(
      wr::run_probe(dss, wr::schedule_for(dss), rng));
  EXPECT_LT(inferred_sa.long_drx_estimate_ms,
            inferred_dss.long_drx_estimate_ms);
  EXPECT_NEAR(inferred_dss.long_drx_estimate_ms, dss.long_drx_cycle_ms,
              0.45 * dss.long_drx_cycle_ms);
  // Idle paging cycles ~1.1-1.3 s on all networks.
  EXPECT_NEAR(inferred_dss.idle_drx_estimate_ms, dss.idle_drx_cycle_ms,
              0.45 * dss.idle_drx_cycle_ms);
}

TEST(Probe, InferenceDeterministicInSeed) {
  const auto& config = wr::profile_by_name("Verizon 4G").config;
  Rng a(5);
  Rng b(5);
  const auto ia = wr::infer_rrc_parameters(
      wr::run_probe(config, wr::schedule_for(config), a));
  const auto ib = wr::infer_rrc_parameters(
      wr::run_probe(config, wr::schedule_for(config), b));
  EXPECT_DOUBLE_EQ(ia.tail_timer_ms, ib.tail_timer_ms);
  EXPECT_DOUBLE_EQ(ia.promotion_estimate_ms, ib.promotion_estimate_ms);
}
