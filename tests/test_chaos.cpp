// Chaos suite (`ctest -R chaos`): sweeps seeded fault plans over the
// measurement harnesses and representative benches, asserting that the
// substrate degrades gracefully — campaigns finish with exit 0 and
// parseable metrics (json::parse rejects NaN/Inf, so parse success is the
// no-NaN gate), invariants hold (rebuffer time never negative, throughput
// zero across a full outage window), and the determinism contract extends
// to faulted runs: same plan + same seed is byte-identical at any thread
// count.
//
// The suite name is lowercase `chaos` so `ctest -R chaos` selects exactly
// these tests (same convention as the `lint` suite).
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "abr/algorithms.h"
#include "abr/session.h"
#include "abr/video.h"
#include "core/json.h"
#include "core/rng.h"
#include "faults/fault_plan.h"
#include "faults/injector.h"
#include "geo/geo.h"
#include "net/speedtest.h"
#include "radio/ue.h"
#include "traces/trace_io.h"
#include "web/selector.h"
#include "web/website.h"

namespace {

using namespace wild5g;

constexpr std::uint64_t kChaosSeed = 20210823;

faults::FaultPlan plan_of(std::vector<faults::FaultWindow> windows) {
  faults::FaultPlan plan;
  plan.name = "chaos_unit";
  plan.windows = std::move(windows);
  return plan;
}

net::SpeedtestConfig speedtest_config(const faults::Injector* faults) {
  net::SpeedtestConfig config;
  config.network = {radio::Carrier::kVerizon, radio::Band::kNrMmWave,
                    radio::DeploymentMode::kNsa};
  config.ue = radio::galaxy_s20u();
  config.ue_location = geo::minneapolis().point;
  config.faults = faults;
  return config;
}

net::SpeedtestServer local_server() {
  return {.name = "local", .location = geo::minneapolis().point,
          .carrier_hosted = true};
}

// --- net: retry, partial results, outage invariants ------------------------

TEST(chaos, speedtest_exhausted_retries_degrade_to_failed_result) {
  const faults::Injector injector(
      plan_of({{faults::FaultKind::kServerUnreachable, 0.0, 1e6, 0.0}}),
      kChaosSeed);
  auto config = speedtest_config(&injector);
  const net::SpeedtestHarness harness(config);
  Rng rng(kChaosSeed);
  const auto result =
      harness.run_at(local_server(), net::ConnectionMode::kMultiple, rng, 0.0);
  EXPECT_TRUE(result.failed);
  EXPECT_EQ(result.errors, config.max_retries + 1);
  EXPECT_DOUBLE_EQ(result.downlink_mbps, 0.0);
  EXPECT_DOUBLE_EQ(result.rtt_ms, 0.0);
}

TEST(chaos, speedtest_retries_through_short_unreachable_window) {
  // Unreachable for [0, 2.5): attempts at t=0 and t=1 fail, the backoff
  // doubles, and the attempt at t=3 lands past the window and succeeds.
  const faults::Injector injector(
      plan_of({{faults::FaultKind::kServerUnreachable, 0.0, 2.5, 0.0}}),
      kChaosSeed);
  const net::SpeedtestHarness harness(speedtest_config(&injector));
  Rng rng(kChaosSeed);
  const auto result =
      harness.run_at(local_server(), net::ConnectionMode::kMultiple, rng, 0.0);
  EXPECT_FALSE(result.failed);
  EXPECT_EQ(result.errors, 2);
  EXPECT_GT(result.downlink_mbps, 0.0);
}

TEST(chaos, speedtest_throughput_is_zero_across_full_outage) {
  const faults::Injector injector(
      plan_of({{faults::FaultKind::kRadioOutage, 0.0, 1e6, 0.0}}),
      kChaosSeed);
  const net::SpeedtestHarness harness(speedtest_config(&injector));
  Rng rng(kChaosSeed);
  const auto result =
      harness.run_at(local_server(), net::ConnectionMode::kMultiple, rng, 0.0);
  EXPECT_FALSE(result.failed);  // the session connects; the air is dead
  EXPECT_DOUBLE_EQ(result.downlink_mbps, 0.0);
  EXPECT_DOUBLE_EQ(result.uplink_mbps, 0.0);
}

TEST(chaos, speedtest_partial_outage_degrades_but_not_to_zero) {
  // The outage covers half of the 15 s measurement window.
  const faults::Injector injector(
      plan_of({{faults::FaultKind::kRadioOutage, 0.0, 7.5, 0.0}}),
      kChaosSeed);
  const net::SpeedtestHarness faulted(speedtest_config(&injector));
  const net::SpeedtestHarness clean(speedtest_config(nullptr));
  Rng rng_f(kChaosSeed);
  Rng rng_c(kChaosSeed);
  const auto with_fault = faulted.run_at(
      local_server(), net::ConnectionMode::kMultiple, rng_f, 0.0);
  const auto without = clean.run_at(local_server(),
                                    net::ConnectionMode::kMultiple, rng_c, 0.0);
  EXPECT_GT(with_fault.downlink_mbps, 0.0);
  EXPECT_LT(with_fault.downlink_mbps, without.downlink_mbps);
  EXPECT_NEAR(with_fault.downlink_mbps, without.downlink_mbps * 0.5, 1e-9);
}

TEST(chaos, speedtest_campaign_aggregates_partial_results) {
  // Trials are 20 s apart; the unreachable window kills only trial 0 (even
  // its last retry at t = 0+1+2+4 = 7 s is inside [0, 10)).
  const faults::Injector injector(
      plan_of({{faults::FaultKind::kServerUnreachable, 0.0, 10.0, 0.0}}),
      kChaosSeed);
  const net::SpeedtestHarness harness(speedtest_config(&injector));
  Rng rng(kChaosSeed);
  const auto result =
      harness.peak_of(local_server(), net::ConnectionMode::kMultiple, 5, rng);
  EXPECT_FALSE(result.failed);
  EXPECT_EQ(result.errors, 4);  // trial 0's four doomed attempts
  EXPECT_GT(result.downlink_mbps, 0.0);
  EXPECT_TRUE(std::isfinite(result.downlink_mbps));
}

// --- abr: stalls become rebuffer time, sessions always finish ---------------

TEST(chaos, abr_session_converts_stall_windows_into_rebuffer_time) {
  traces::Trace trace;
  trace.id = "flat10";
  trace.interval_s = 1.0;
  trace.mbps.assign(600, 10.0);
  const abr::TraceSource source(trace);
  const auto video = abr::video_ladder_4g();

  abr::SessionOptions options;
  options.chunk_count = 40;
  abr::BbaAbr clean_abr;
  const auto baseline = abr::stream(video, source, clean_abr, options);

  const faults::Injector injector(
      plan_of({{faults::FaultKind::kChunkStall, 20.0, 40.0, 0.98}}),
      kChaosSeed);
  options.faults = &injector;
  abr::BbaAbr faulted_abr;
  const auto faulted = abr::stream(video, source, faulted_abr, options);

  // The session still delivers every chunk; the stall shows up as rebuffer
  // time, never as a failure or a negative/NaN metric.
  EXPECT_EQ(faulted.chunks.size(), static_cast<std::size_t>(40));
  EXPECT_GE(faulted.total_stall_s, 0.0);
  EXPECT_GE(baseline.total_stall_s, 0.0);
  EXPECT_GT(faulted.total_stall_s + faulted.startup_delay_s,
            baseline.total_stall_s + baseline.startup_delay_s);
  EXPECT_TRUE(std::isfinite(faulted.qoe));
  EXPECT_TRUE(std::isfinite(faulted.avg_bitrate_mbps));
}

TEST(chaos, abr_session_survives_total_radio_outage_window) {
  traces::Trace trace;
  trace.id = "flat10";
  trace.interval_s = 1.0;
  trace.mbps.assign(2000, 10.0);
  const abr::TraceSource source(trace);
  const auto video = abr::video_ladder_4g();

  const faults::Injector injector(
      plan_of({{faults::FaultKind::kRadioOutage, 10.0, 30.0, 0.0}}),
      kChaosSeed);
  abr::SessionOptions options;
  options.chunk_count = 30;
  options.faults = &injector;
  abr::RateBasedAbr algorithm;
  const auto result = abr::stream(video, source, algorithm, options);
  EXPECT_EQ(result.chunks.size(), static_cast<std::size_t>(30));
  EXPECT_GE(result.total_stall_s, 0.0);
  EXPECT_TRUE(std::isfinite(result.qoe));
}

// --- web: failed objects degrade PLT, never abort the corpus ----------------

TEST(chaos, web_corpus_counts_failed_objects_and_inflates_plt) {
  Rng rng_clean(kChaosSeed);
  Rng rng_fault(kChaosSeed);
  const auto corpus = [] {
    Rng rng(kChaosSeed);
    return web::generate_corpus(30, rng);
  }();
  const auto device = power::DevicePowerProfile::s10();
  const auto clean = web::measure_corpus(corpus, 2, device, rng_clean);

  const faults::Injector injector(
      plan_of({{faults::FaultKind::kObjectFail, 0.0, 1e6, 0.25}}),
      kChaosSeed);
  const auto faulted =
      web::measure_corpus(corpus, 2, device, rng_fault, &injector);

  ASSERT_EQ(clean.size(), faulted.size());
  int failed_objects = 0;
  double clean_plt = 0.0;
  double faulted_plt = 0.0;
  for (std::size_t i = 0; i < clean.size(); ++i) {
    EXPECT_EQ(clean[i].failed_objects, 0);
    failed_objects += faulted[i].failed_objects;
    clean_plt += clean[i].plt_5g_s + clean[i].plt_4g_s;
    faulted_plt += faulted[i].plt_5g_s + faulted[i].plt_4g_s;
    EXPECT_TRUE(std::isfinite(faulted[i].plt_5g_s));
    EXPECT_TRUE(std::isfinite(faulted[i].energy_5g_j));
  }
  EXPECT_GT(failed_objects, 0);
  // Timeouts on failed objects push page completion later on aggregate.
  EXPECT_GT(faulted_plt, clean_plt);
}

// --- traces: strict readers throw, lenient readers skip-and-count -----------

TEST(chaos, trace_reader_skips_and_counts_corrupt_records) {
  traces::Trace trace;
  trace.id = "t0";
  trace.interval_s = 1.0;
  for (int i = 0; i < 50; ++i) trace.mbps.push_back(100.0 + i);

  // Corrupt the tail records [45, 50) with certainty.
  const faults::Injector injector(
      plan_of({{faults::FaultKind::kTraceCorrupt, 45.0, 5.0, 1.0}}),
      kChaosSeed);
  std::size_t corrupted = 0;
  const std::string csv =
      traces::corrupt_traces_csv({trace}, injector, &corrupted);
  EXPECT_EQ(corrupted, 5u);

  {  // Strict mode: corruption is an error.
    std::istringstream in(csv);
    EXPECT_THROW((void)traces::read_traces_csv(in), Error);
  }
  {  // Lenient mode: the readable prefix survives, the damage is counted.
    std::istringstream in(csv);
    traces::TraceReadStats stats;
    const auto recovered = traces::read_traces_csv(in, &stats);
    EXPECT_EQ(stats.skipped_records, 5u);
    ASSERT_EQ(recovered.size(), 1u);
    EXPECT_EQ(recovered[0].mbps.size(), 45u);
    EXPECT_DOUBLE_EQ(recovered[0].mbps[44], 144.0);
  }
}

TEST(chaos, trace_reader_lenient_mode_is_noop_on_clean_input) {
  traces::Trace trace;
  trace.id = "t0";
  trace.interval_s = 0.5;
  trace.mbps = {1.0, 2.0, 3.0};
  std::ostringstream out;
  traces::write_traces_csv(out, {trace});

  std::istringstream strict_in(out.str());
  const auto strict = traces::read_traces_csv(strict_in);
  std::istringstream lenient_in(out.str());
  traces::TraceReadStats stats;
  const auto lenient = traces::read_traces_csv(lenient_in, &stats);
  EXPECT_EQ(stats.skipped_records, 0u);
  ASSERT_EQ(strict.size(), lenient.size());
  EXPECT_EQ(strict[0].mbps, lenient[0].mbps);
}

// --- bench sweep: seeded plans over real binaries ---------------------------

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Runs `bench --json <tmp> [--faults <plan>] [extra]`, asserts exit 0, and
/// returns the metrics document text.
std::string run_bench(const std::string& bench, const std::string& tag,
                      const std::string& plan = "",
                      const std::string& extra = "") {
  const std::string out_path =
      ::testing::TempDir() + "wild5g_chaos_" + bench + "_" + tag + ".json";
  std::remove(out_path.c_str());
  std::string command =
      std::string(WILD5G_BENCH_DIR) + "/" + bench + " --json " + out_path;
  if (!plan.empty()) {
    command += " --faults " + std::string(WILD5G_FAULT_PLAN_DIR) + "/" + plan;
  }
  if (!extra.empty()) command += " " + extra;
  command += " > /dev/null";
  const int rc = std::system(command.c_str());
  EXPECT_EQ(rc, 0) << command;
  const std::string content = read_file(out_path);
  std::remove(out_path.c_str());
  return content;
}

/// The no-NaN/no-Inf gate: core/json.h's parser rejects non-finite numbers,
/// so a successful parse certifies the document.
void expect_valid_metrics(const std::string& text, const std::string& plan) {
  ASSERT_FALSE(text.empty());
  json::Value doc;
  ASSERT_NO_THROW(doc = json::parse(text)) << "unparseable metrics document";
  const json::Value* fault_plan = doc.find("fault_plan");
  ASSERT_NE(fault_plan, nullptr)
      << "faulted run did not record its plan name";
  EXPECT_EQ(fault_plan->as_string(), plan);
}

TEST(chaos, bench_server_survey_under_mixed_plan_is_deterministic) {
  const std::string first =
      run_bench("bench_fig24_server_survey", "a", "chaos_mixed.json");
  const std::string second =
      run_bench("bench_fig24_server_survey", "b", "chaos_mixed.json");
  expect_valid_metrics(first, "chaos_mixed");
  EXPECT_EQ(first, second) << "faulted run is not run-to-run deterministic";
  // Faults must actually perturb the measurement (and the document must be
  // distinguishable from the committed golden via fault_plan).
  const std::string clean = run_bench("bench_fig24_server_survey", "clean");
  EXPECT_NE(first, clean) << "fault plan had no observable effect";
  EXPECT_EQ(clean.find("fault_plan"), std::string::npos)
      << "default run must not mention faults (golden byte-identity)";
}

TEST(chaos, bench_server_survey_faulted_is_thread_count_invariant) {
  const std::string serial = run_bench("bench_fig24_server_survey", "t1",
                                       "chaos_mixed.json", "--threads 1");
  const std::string threaded = run_bench("bench_fig24_server_survey", "t8",
                                         "chaos_mixed.json", "--threads 8");
  expect_valid_metrics(serial, "chaos_mixed");
  EXPECT_EQ(serial, threaded)
      << "faulted output depends on thread count";
}

TEST(chaos, bench_server_survey_survives_total_unreachability) {
  const std::string text = run_bench("bench_fig24_server_survey", "dead",
                                     "chaos_outage_total.json");
  expect_valid_metrics(text, "chaos_outage_total");
  // Every trial fails, yet the bench exits 0 with a parseable document and
  // a non-zero error tally.
  json::Value doc = json::parse(text);
  const json::Value* metrics = doc.find("metrics");
  ASSERT_NE(metrics, nullptr);
  const json::Value* errors = metrics->find("connection_errors");
  ASSERT_NE(errors, nullptr);
  EXPECT_GT(errors->as_number(), 0.0);
}

TEST(chaos, bench_abr_qoe_under_stall_plan) {
  const std::string first =
      run_bench("bench_fig17_abr_qoe", "a", "chaos_abr_stall.json");
  const std::string second =
      run_bench("bench_fig17_abr_qoe", "b", "chaos_abr_stall.json");
  expect_valid_metrics(first, "chaos_abr_stall");
  EXPECT_EQ(first, second);
  const std::string clean = run_bench("bench_fig17_abr_qoe", "clean");
  EXPECT_NE(first, clean) << "stall plan had no observable effect";
}

TEST(chaos, bench_web_qoe_under_object_failure_plan) {
  const std::string text = run_bench("bench_fig19_20_web_qoe", "objfail",
                                     "chaos_web_objectfail.json");
  expect_valid_metrics(text, "chaos_web_objectfail");
  json::Value doc = json::parse(text);
  const json::Value* metrics = doc.find("metrics");
  ASSERT_NE(metrics, nullptr);
  const json::Value* failed = metrics->find("failed_objects");
  ASSERT_NE(failed, nullptr);
  EXPECT_GT(failed->as_number(), 0.0);
}

TEST(chaos, bench_rejects_malformed_fault_plan) {
  const std::string plan_path =
      ::testing::TempDir() + "wild5g_chaos_bad_plan.json";
  {
    std::ofstream out(plan_path);
    out << R"({"windows": [{"kind": "nope", "start_s": 0, "duration_s": 1}]})";
  }
  const std::string command = std::string(WILD5G_BENCH_DIR) +
                              "/bench_fig24_server_survey --faults " +
                              plan_path + " > /dev/null 2>&1";
  const int rc = std::system(command.c_str());
  EXPECT_NE(rc, 0) << "bench accepted a malformed fault plan";
  std::remove(plan_path.c_str());
}

// --- metro campaign benches: fault sweep + argument edges -------------------

/// Runs `bench <args>` and returns its exit code (usage errors exit 2; the
/// contract is a *clean refusal*, never a crash or a half-run campaign).
int bench_exit_code(const std::string& bench, const std::string& args) {
  const std::string command = std::string(WILD5G_BENCH_DIR) + "/" + bench +
                              " " + args + " > /dev/null 2>&1";
  const int rc = std::system(command.c_str());
  EXPECT_TRUE(WIFEXITED(rc)) << "bench crashed: " << command;
  return WIFEXITED(rc) ? WEXITSTATUS(rc) : -1;
}

TEST(chaos, bench_metro_load_under_radio_plan_is_deterministic) {
  const std::string first = run_bench("bench_extension_metro_load", "a",
                                      "chaos_metro_radio.json");
  const std::string second = run_bench("bench_extension_metro_load", "b",
                                       "chaos_metro_radio.json");
  expect_valid_metrics(first, "chaos_metro_radio");
  EXPECT_EQ(first, second) << "faulted run is not run-to-run deterministic";
  const std::string clean = run_bench("bench_extension_metro_load", "clean");
  EXPECT_NE(first, clean) << "radio fault plan had no observable effect";
  EXPECT_EQ(clean.find("fault_plan"), std::string::npos)
      << "default run must not mention faults (golden byte-identity)";
}

TEST(chaos, bench_metro_qoe_faulted_is_thread_count_invariant) {
  const std::string serial = run_bench("bench_extension_metro_qoe", "t1",
                                       "chaos_metro_radio.json",
                                       "--threads 1");
  const std::string threaded = run_bench("bench_extension_metro_qoe", "t8",
                                         "chaos_metro_radio.json",
                                         "--threads 8");
  expect_valid_metrics(serial, "chaos_metro_radio");
  EXPECT_EQ(serial, threaded) << "faulted output depends on thread count";
}

TEST(chaos, bench_metro_rejects_plans_with_unsupported_kinds) {
  // chaos_mixed carries transport/net kinds the metro campaign does not
  // model; running anyway would silently measure a half-applied plan.
  for (const char* bench :
       {"bench_extension_metro_load", "bench_extension_metro_qoe"}) {
    EXPECT_EQ(bench_exit_code(bench,
                              "--faults " + std::string(WILD5G_FAULT_PLAN_DIR) +
                                  "/chaos_mixed.json"),
              2)
        << bench;
  }
}

TEST(chaos, bench_rejects_zero_and_garbage_thread_counts) {
  // `--threads 0` silently meaning "auto" would mislabel recorded timings;
  // the contract is exit 2 with a clear message, on every bench.
  for (const char* bench :
       {"bench_extension_metro_load", "bench_fig24_server_survey"}) {
    EXPECT_EQ(bench_exit_code(bench, "--threads 0"), 2) << bench;
    EXPECT_EQ(bench_exit_code(bench, "--threads nope"), 2) << bench;
    EXPECT_EQ(bench_exit_code(bench, "--threads"), 2) << bench;
  }
}

TEST(chaos, bench_metro_rejects_degenerate_campaign_sizes) {
  for (const char* bench :
       {"bench_extension_metro_load", "bench_extension_metro_qoe"}) {
    EXPECT_EQ(bench_exit_code(bench, "--ues 0"), 2) << bench;
    EXPECT_EQ(bench_exit_code(bench, "--cells 0"), 2) << bench;
    EXPECT_EQ(bench_exit_code(bench, "--ues -3"), 2) << bench;
    EXPECT_EQ(bench_exit_code(bench, "--ues 1x"), 2) << bench;
    EXPECT_EQ(bench_exit_code(bench, "--ues"), 2) << bench;
    EXPECT_EQ(bench_exit_code(bench, "--frobnicate"), 2) << bench;
  }
}

TEST(chaos, bench_metro_faults_compose_with_multi_ue_flags) {
  // `--faults` + `--ues/--cells` + `--threads` together: still exit 0,
  // still deterministic, still perturbed by the plan.
  const std::string args = "--ues 20 --cells 6";
  const std::string faulted = run_bench("bench_extension_metro_load", "fx",
                                        "chaos_metro_radio.json", args);
  const std::string faulted2 = run_bench("bench_extension_metro_load", "fy",
                                         "chaos_metro_radio.json", args);
  expect_valid_metrics(faulted, "chaos_metro_radio");
  EXPECT_EQ(faulted, faulted2);
  const std::string clean =
      run_bench("bench_extension_metro_load", "fclean", "", args);
  EXPECT_NE(faulted, clean) << "plan had no effect on the sized-down run";
}

}  // namespace
