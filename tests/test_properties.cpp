// Cross-module property tests: invariants swept over parameter grids and
// seeds rather than spot-checked.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "abr/algorithms.h"
#include "abr/video.h"
#include "core/rng.h"
#include "power/power_model.h"
#include "radio/channel.h"
#include "radio/ue.h"
#include "rrc/probe.h"
#include "traces/traces.h"

using wild5g::Rng;

// ---------------------------------------------------------------------------
// Power rails: P(T) strictly increasing and positive over every measured
// (device, network, direction) rail.
// ---------------------------------------------------------------------------

using RailCase = std::tuple<int /*device*/, wild5g::power::RailKey,
                            wild5g::radio::Direction>;

class RailGrid : public ::testing::TestWithParam<RailCase> {};

TEST_P(RailGrid, PowerStrictlyIncreasingAndPositive) {
  const auto [device_index, key, direction] = GetParam();
  const auto device = device_index == 0
                          ? wild5g::power::DevicePowerProfile::s20u()
                          : wild5g::power::DevicePowerProfile::s10();
  if (!device.has_rail(key)) GTEST_SKIP();
  const auto& rail = device.rail(key, direction);
  double prev = 0.0;
  for (double t = 0.0; t <= 500.0; t += 25.0) {
    const double p = rail.power_mw(t);
    EXPECT_GT(p, prev);
    prev = p;
  }
  EXPECT_GT(rail.power_mw(0.0), 100.0);  // radios are never free
}

TEST_P(RailGrid, EfficiencyStrictlyImprovingWithRate) {
  const auto [device_index, key, direction] = GetParam();
  const auto device = device_index == 0
                          ? wild5g::power::DevicePowerProfile::s20u()
                          : wild5g::power::DevicePowerProfile::s10();
  if (!device.has_rail(key)) GTEST_SKIP();
  const auto& rail = device.rail(key, direction);
  double prev = 1e18;
  for (double t = 1.0; t <= 512.0; t *= 2.0) {
    const double e =
        wild5g::power::efficiency_uj_per_bit(rail.power_mw(t), t);
    EXPECT_LT(e, prev);  // linear rails: energy/bit falls monotonically
    prev = e;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllRails, RailGrid,
    ::testing::Combine(
        ::testing::Values(0, 1),
        ::testing::Values(wild5g::power::RailKey::k4g,
                          wild5g::power::RailKey::kNsaLowBand,
                          wild5g::power::RailKey::kNsaMmWave,
                          wild5g::power::RailKey::kSaLowBand),
        ::testing::Values(wild5g::radio::Direction::kDownlink,
                          wild5g::radio::Direction::kUplink)));

// ---------------------------------------------------------------------------
// Link capacity: monotone non-decreasing in RSRP for every network config
// and UE.
// ---------------------------------------------------------------------------

using CapacityCase = std::tuple<wild5g::radio::Band,
                                wild5g::radio::DeploymentMode, int /*ue*/>;

class CapacityGrid : public ::testing::TestWithParam<CapacityCase> {};

TEST_P(CapacityGrid, MonotoneInSignal) {
  const auto [band, mode, ue_index] = GetParam();
  const wild5g::radio::NetworkConfig network{
      wild5g::radio::Carrier::kVerizon, band, mode};
  const auto ue = ue_index == 0   ? wild5g::radio::galaxy_s20u()
                  : ue_index == 1 ? wild5g::radio::pixel5()
                                  : wild5g::radio::galaxy_s10();
  for (const auto direction : {wild5g::radio::Direction::kDownlink,
                               wild5g::radio::Direction::kUplink}) {
    double prev = -1.0;
    for (double rsrp = -130.0; rsrp <= -60.0; rsrp += 5.0) {
      const double cap =
          wild5g::radio::link_capacity_mbps(network, ue, direction, rsrp);
      EXPECT_GE(cap, prev - 1e-9) << wild5g::radio::to_string(network);
      EXPECT_GE(cap, 0.0);
      prev = cap;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllNetworks, CapacityGrid,
    ::testing::Combine(
        ::testing::Values(wild5g::radio::Band::kLte,
                          wild5g::radio::Band::kNrLowBand,
                          wild5g::radio::Band::kNrMidBand,
                          wild5g::radio::Band::kNrMmWave),
        ::testing::Values(wild5g::radio::DeploymentMode::kNsa,
                          wild5g::radio::DeploymentMode::kSa),
        ::testing::Values(0, 1, 2)));

// ---------------------------------------------------------------------------
// Streaming engine: conservation invariants across random traces and
// algorithms. Every chunk's wall time decomposes into startup + stall +
// playback-backed download; per-second consumption equals delivered bits
// plus abandoned partials.
// ---------------------------------------------------------------------------

class SessionInvariants : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SessionInvariants, AccountingHoldsOnRandomTraces) {
  Rng rng(GetParam());
  auto config = wild5g::traces::lumos5g_mmwave_config();
  config.count = 1;
  config.duration_s = 400.0;
  const auto traces = wild5g::traces::generate_traces(config, rng);
  const auto video = wild5g::abr::video_ladder_5g();

  wild5g::abr::SessionOptions options;
  options.chunk_count = 30;
  options.allow_abandonment = (GetParam() % 2) == 0;

  wild5g::abr::HarmonicMeanPredictor predictor;
  wild5g::abr::ModelPredictiveAbr mpc(
      wild5g::abr::ModelPredictiveAbr::Variant::kRobust, predictor);
  wild5g::abr::TraceSource source(traces[0]);
  const auto result = wild5g::abr::stream(video, source, mpc, options);

  // (1) All chunks delivered, tracks valid.
  ASSERT_EQ(result.chunks.size(), 30u);
  for (const auto& chunk : result.chunks) {
    EXPECT_GE(chunk.track, 0);
    EXPECT_LT(chunk.track, video.track_count());
    EXPECT_GT(chunk.download_s, 0.0);
    EXPECT_GE(chunk.stall_s, 0.0);
    EXPECT_GE(chunk.buffer_after_s, 0.0);
    EXPECT_LE(chunk.buffer_after_s, options.max_buffer_s + 1e-9);
  }
  // (2) Stall total equals the per-chunk sum.
  double stall_sum = 0.0;
  for (const auto& chunk : result.chunks) stall_sum += chunk.stall_s;
  EXPECT_NEAR(stall_sum, result.total_stall_s, 1e-9);
  // (3) Consumption >= delivered bits (equality without abandonment).
  double consumed = 0.0;
  for (double mbits : result.per_second_dl_mbps) consumed += mbits;
  double delivered = 0.0;
  for (const auto& chunk : result.chunks) {
    delivered += chunk.bitrate_mbps * video.chunk_s;
  }
  if (options.allow_abandonment) {
    EXPECT_GE(consumed, delivered - 1e-6);
  } else {
    EXPECT_NEAR(consumed, delivered, 1e-6);
  }
  // (4) QoE identity.
  double bitrate_sum = 0.0;
  double smooth = 0.0;
  for (std::size_t i = 0; i < result.chunks.size(); ++i) {
    bitrate_sum += result.chunks[i].bitrate_mbps;
    if (i > 0) {
      smooth += std::abs(result.chunks[i].bitrate_mbps -
                         result.chunks[i - 1].bitrate_mbps);
    }
  }
  EXPECT_NEAR(result.qoe,
              bitrate_sum - video.top_mbps() * result.total_stall_s - smooth,
              1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SessionInvariants,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ---------------------------------------------------------------------------
// RRC probe inference: stable across measurement seeds (the tool must not
// be a lucky-seed artifact).
// ---------------------------------------------------------------------------

class InferenceSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(InferenceSeeds, TailTimerStableAcrossSeeds) {
  const auto& config =
      wild5g::rrc::profile_by_name("Verizon NSA mmWave").config;
  const auto schedule = wild5g::rrc::schedule_for(config);
  Rng rng(GetParam());
  const auto inferred = wild5g::rrc::infer_rrc_parameters(
      wild5g::rrc::run_probe(config, schedule, rng));
  EXPECT_NEAR(inferred.tail_timer_ms, config.inactivity_timer_ms,
              3.0 * schedule.step_ms);
  EXPECT_FALSE(inferred.mid_plateau_end_ms.has_value());
}

INSTANTIATE_TEST_SUITE_P(Seeds, InferenceSeeds,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

// ---------------------------------------------------------------------------
// Trace generator: population anchors hold across seeds.
// ---------------------------------------------------------------------------

class TraceSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TraceSeeds, MedianAnchorAndNonNegativity) {
  Rng rng(GetParam());
  auto config = wild5g::traces::lumos5g_mmwave_config();
  config.count = 40;
  const auto traces = wild5g::traces::generate_traces(config, rng);
  EXPECT_NEAR(wild5g::traces::population_median_mbps(traces), 160.0, 3.0);
  for (const auto& trace : traces) {
    for (double v : trace.mbps) EXPECT_GE(v, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TraceSeeds,
                         ::testing::Values(3, 14, 159, 2653));
