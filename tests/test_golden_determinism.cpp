// Determinism gate: a bench binary invoked twice at kBenchSeed must produce
// byte-identical JSON metrics documents. This is what lets the committed
// goldens in bench/golden/ act as regression baselines at all — any hidden
// nondeterminism (unseeded RNG, iteration over pointer-keyed maps, time- or
// address-dependent output) shows up here as a byte diff.
//
// WILD5G_BENCH_DIR is injected by tests/CMakeLists.txt and points at the
// build tree's bench/ output directory.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string run_bench_json(const std::string& bench, const std::string& tag,
                           const std::string& extra_args = "") {
  const std::string out_path =
      ::testing::TempDir() + "wild5g_determinism_" + bench + "_" + tag +
      ".json";
  std::remove(out_path.c_str());
  const std::string command = std::string(WILD5G_BENCH_DIR) + "/" + bench +
                              " --json " + out_path +
                              (extra_args.empty() ? "" : " " + extra_args) +
                              " > /dev/null";
  const int rc = std::system(command.c_str());
  EXPECT_EQ(rc, 0) << command;
  const std::string content = read_file(out_path);
  std::remove(out_path.c_str());
  return content;
}

void expect_two_runs_identical(const std::string& bench) {
  const std::string first = run_bench_json(bench, "a");
  const std::string second = run_bench_json(bench, "b");
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second) << bench << " is not run-to-run deterministic";
  // Sanity: the document is a real metrics document, not an error page.
  EXPECT_NE(first.find("\"bench\""), std::string::npos);
  EXPECT_NE(first.find("\"seed\""), std::string::npos);
  EXPECT_NE(first.find("\"tables\""), std::string::npos);
}

}  // namespace

TEST(GoldenDeterminism, HandoffBenchIsByteIdentical) {
  expect_two_runs_identical("bench_fig09_handoffs");
}

TEST(GoldenDeterminism, AbrQoeBenchIsByteIdentical) {
  expect_two_runs_identical("bench_fig17_abr_qoe");
}

// The parallel campaign runner's contract: thread count is a pure
// performance knob. One worker vs eight must emit byte-identical metrics
// documents (per-task forked Rng substreams, index-ordered reduction), on a
// bench whose campaign loops actually fan out.
TEST(GoldenDeterminism, ThreadCountDoesNotChangeBytes) {
  const std::string serial =
      run_bench_json("bench_fig24_server_survey", "t1", "--threads 1");
  const std::string threaded =
      run_bench_json("bench_fig24_server_survey", "t8", "--threads 8");
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(serial, threaded)
      << "bench_fig24_server_survey output depends on thread count";
  // The document must not record the thread count, or byte-identity across
  // --threads values could never hold.
  EXPECT_EQ(serial.find("threads"), std::string::npos);
}

TEST(GoldenDeterminism, ThreadCountEnvVarDoesNotChangeBytes) {
  const std::string flagged =
      run_bench_json("bench_fig09_handoffs", "flag", "--threads 8");
  const std::string via_env = [] {
    ::setenv("WILD5G_THREADS", "3", 1);
    std::string out = run_bench_json("bench_fig09_handoffs", "env");
    ::unsetenv("WILD5G_THREADS");
    return out;
  }();
  EXPECT_EQ(flagged, via_env)
      << "bench_fig09_handoffs output depends on WILD5G_THREADS";
}
