// Tests for the power rails: Table 8 slopes, Fig. 11/26 crossovers,
// Fig. 12/27 efficiency behavior, and the RSRP penalty (Figs. 13-14).
#include "power/power_model.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/error.h"

namespace wp = wild5g::power;
using wild5g::radio::Direction;
using wp::DevicePowerProfile;
using wp::RailKey;

TEST(Rails, Table8SlopesVerbatim) {
  const auto s20u = DevicePowerProfile::s20u();
  EXPECT_DOUBLE_EQ(s20u.rail(RailKey::k4g, Direction::kDownlink)
                       .slope_mw_per_mbps, 14.55);
  EXPECT_DOUBLE_EQ(s20u.rail(RailKey::k4g, Direction::kUplink)
                       .slope_mw_per_mbps, 80.21);
  EXPECT_DOUBLE_EQ(s20u.rail(RailKey::kNsaLowBand, Direction::kDownlink)
                       .slope_mw_per_mbps, 13.52);
  EXPECT_DOUBLE_EQ(s20u.rail(RailKey::kNsaLowBand, Direction::kUplink)
                       .slope_mw_per_mbps, 29.15);
  EXPECT_DOUBLE_EQ(s20u.rail(RailKey::kNsaMmWave, Direction::kDownlink)
                       .slope_mw_per_mbps, 1.81);
  EXPECT_DOUBLE_EQ(s20u.rail(RailKey::kNsaMmWave, Direction::kUplink)
                       .slope_mw_per_mbps, 9.42);

  const auto s10 = DevicePowerProfile::s10();
  EXPECT_DOUBLE_EQ(s10.rail(RailKey::k4g, Direction::kDownlink)
                       .slope_mw_per_mbps, 13.38);
  EXPECT_DOUBLE_EQ(s10.rail(RailKey::k4g, Direction::kUplink)
                       .slope_mw_per_mbps, 57.99);
  EXPECT_DOUBLE_EQ(s10.rail(RailKey::kNsaMmWave, Direction::kDownlink)
                       .slope_mw_per_mbps, 2.06);
  EXPECT_DOUBLE_EQ(s10.rail(RailKey::kNsaMmWave, Direction::kUplink)
                       .slope_mw_per_mbps, 5.27);
}

TEST(Rails, UplinkSlopeSteeperThanDownlink) {
  // Appendix A.4: uplink power rises 2.2-5.9x faster than downlink.
  for (const auto& device :
       {DevicePowerProfile::s20u(), DevicePowerProfile::s10()}) {
    for (const auto key : {RailKey::k4g, RailKey::kNsaMmWave}) {
      const double ratio =
          device.rail(key, Direction::kUplink).slope_mw_per_mbps /
          device.rail(key, Direction::kDownlink).slope_mw_per_mbps;
      EXPECT_GE(ratio, 2.0) << device.device_name();
      EXPECT_LE(ratio, 6.2) << device.device_name();
    }
  }
}

TEST(Crossover, S20UDownlinkAtPaperValues) {
  // Fig. 11: mmWave crosses 4G at 187 Mbps and low-band at 189 Mbps (DL).
  const auto s20u = DevicePowerProfile::s20u();
  const auto mm = s20u.rail(RailKey::kNsaMmWave, Direction::kDownlink);
  const auto lte = s20u.rail(RailKey::k4g, Direction::kDownlink);
  const auto lb = s20u.rail(RailKey::kNsaLowBand, Direction::kDownlink);
  ASSERT_TRUE(wp::crossover_mbps(mm, lte).has_value());
  EXPECT_NEAR(*wp::crossover_mbps(mm, lte), 187.0, 1.0);
  EXPECT_NEAR(*wp::crossover_mbps(mm, lb), 189.0, 1.0);
}

TEST(Crossover, S20UUplinkAtPaperValues) {
  // Fig. 11: UL crossovers at 40 Mbps (vs 4G) and 123 Mbps (vs low-band).
  const auto s20u = DevicePowerProfile::s20u();
  const auto mm = s20u.rail(RailKey::kNsaMmWave, Direction::kUplink);
  const auto lte = s20u.rail(RailKey::k4g, Direction::kUplink);
  const auto lb = s20u.rail(RailKey::kNsaLowBand, Direction::kUplink);
  EXPECT_NEAR(*wp::crossover_mbps(mm, lte), 40.0, 1.0);
  EXPECT_NEAR(*wp::crossover_mbps(mm, lb), 123.0, 1.0);
}

TEST(Crossover, S10AtPaperValues) {
  // Fig. 26: DL 213 Mbps, UL 44 Mbps.
  const auto s10 = DevicePowerProfile::s10();
  EXPECT_NEAR(*wp::crossover_mbps(
                  s10.rail(RailKey::kNsaMmWave, Direction::kDownlink),
                  s10.rail(RailKey::k4g, Direction::kDownlink)),
              213.0, 1.0);
  EXPECT_NEAR(*wp::crossover_mbps(
                  s10.rail(RailKey::kNsaMmWave, Direction::kUplink),
                  s10.rail(RailKey::k4g, Direction::kUplink)),
              44.0, 1.0);
}

TEST(Crossover, ParallelRailsHaveNone) {
  const wp::PowerRail a{2.0, 100.0};
  const wp::PowerRail b{2.0, 300.0};
  EXPECT_FALSE(wp::crossover_mbps(a, b).has_value());
}

TEST(Efficiency, FiveGWorseAtLowBetterAtHighThroughput) {
  // Sec. 4.3: 5G is ~79% less efficient at low DL throughput, up to 5x more
  // efficient at high throughput.
  const auto s20u = DevicePowerProfile::s20u();
  const auto mm = s20u.rail(RailKey::kNsaMmWave, Direction::kDownlink);
  const auto lte = s20u.rail(RailKey::k4g, Direction::kDownlink);

  const double low = 8.0;  // Mbps
  const double eff_mm_low = wp::efficiency_uj_per_bit(mm.power_mw(low), low);
  const double eff_lte_low =
      wp::efficiency_uj_per_bit(lte.power_mw(low), low);
  EXPECT_GT(eff_mm_low, 3.0 * eff_lte_low);  // much worse (higher J/bit)

  // At each link's achievable high end: mmWave 1500 Mbps vs LTE 150 Mbps.
  const double eff_mm_high =
      wp::efficiency_uj_per_bit(mm.power_mw(1500.0), 1500.0);
  const double eff_lte_high =
      wp::efficiency_uj_per_bit(lte.power_mw(150.0), 150.0);
  EXPECT_GT(eff_lte_high, 4.0 * eff_mm_high);  // ~5x more efficient
  EXPECT_LT(eff_lte_high, 7.0 * eff_mm_high);
}

TEST(Efficiency, LogLogSlopeApproachesMinusOneAtLowRate) {
  // Sec. 4.3's derivation: log E ~ c3 log T + c4 with slope -> -1 when the
  // base power dominates.
  const auto rail =
      DevicePowerProfile::s20u().rail(RailKey::kNsaMmWave,
                                      Direction::kDownlink);
  const double e1 = wp::efficiency_uj_per_bit(rail.power_mw(1.0), 1.0);
  const double e10 = wp::efficiency_uj_per_bit(rail.power_mw(10.0), 10.0);
  const double slope = (std::log10(e10) - std::log10(e1)) / 1.0;
  EXPECT_NEAR(slope, -1.0, 0.05);
}

TEST(SignalPenalty, ZeroAtGoodSignalCappedAtEdge) {
  EXPECT_DOUBLE_EQ(wp::signal_penalty(-70.0, -80.0, -110.0), 0.0);
  EXPECT_DOUBLE_EQ(wp::signal_penalty(-80.0, -80.0, -110.0), 0.0);
  EXPECT_NEAR(wp::signal_penalty(-95.0, -80.0, -110.0), 0.3, 1e-9);
  EXPECT_NEAR(wp::signal_penalty(-110.0, -80.0, -110.0), 0.6, 1e-9);
  EXPECT_NEAR(wp::signal_penalty(-130.0, -80.0, -110.0), 0.6, 1e-9);
}

TEST(TransferPower, WeakSignalCostsMore) {
  // Fig. 14: energy per bit rises as NR-SS-RSRP falls.
  const auto s20u = DevicePowerProfile::s20u();
  const double good =
      s20u.transfer_power_mw(RailKey::kNsaMmWave, 500.0, 20.0, -75.0);
  const double weak =
      s20u.transfer_power_mw(RailKey::kNsaMmWave, 500.0, 20.0, -105.0);
  EXPECT_GT(weak, good * 1.2);
}

TEST(TransferPower, MonotoneInThroughput) {
  const auto s20u = DevicePowerProfile::s20u();
  double prev = 0.0;
  for (double dl = 0.0; dl <= 2000.0; dl += 100.0) {
    const double p =
        s20u.transfer_power_mw(RailKey::kNsaMmWave, dl, 0.0, -80.0);
    EXPECT_GT(p, prev);
    prev = p;
  }
}

TEST(TransferPower, RejectsNegativeThroughput) {
  const auto s20u = DevicePowerProfile::s20u();
  EXPECT_THROW((void)s20u.transfer_power_mw(RailKey::k4g, -1.0, 0.0, -80.0),
               wild5g::Error);
}

TEST(Rails, S10LacksLowBand) {
  const auto s10 = DevicePowerProfile::s10();
  EXPECT_FALSE(s10.has_rail(RailKey::kNsaLowBand));
  EXPECT_THROW((void)s10.rail(RailKey::kNsaLowBand, Direction::kDownlink),
               wild5g::Error);
  EXPECT_TRUE(s10.has_rail(RailKey::kNsaMmWave));
}

TEST(Rails, RailKeyMapping) {
  using wild5g::radio::Band;
  using wild5g::radio::Carrier;
  using wild5g::radio::DeploymentMode;
  EXPECT_EQ(wp::rail_key({Carrier::kVerizon, Band::kLte,
                          DeploymentMode::kNsa}),
            RailKey::k4g);
  EXPECT_EQ(wp::rail_key({Carrier::kVerizon, Band::kNrMmWave,
                          DeploymentMode::kNsa}),
            RailKey::kNsaMmWave);
  EXPECT_EQ(wp::rail_key({Carrier::kTMobile, Band::kNrLowBand,
                          DeploymentMode::kSa}),
            RailKey::kSaLowBand);
  EXPECT_EQ(wp::rail_key({Carrier::kTMobile, Band::kNrLowBand,
                          DeploymentMode::kNsa}),
            RailKey::kNsaLowBand);
}

TEST(Efficiency, RejectsZeroThroughput) {
  EXPECT_THROW((void)wp::efficiency_uj_per_bit(100.0, 0.0), wild5g::Error);
}
