// Tests for the A3-event handoff engine.
#include "radio/handoff.h"

#include <gtest/gtest.h>

#include "core/error.h"
#include "core/rng.h"

namespace wr = wild5g::radio;
using wild5g::Rng;

namespace {

std::vector<wr::CellSite> line_of_cells(int count, double spacing_m,
                                        wr::Band band) {
  std::vector<wr::CellSite> cells;
  for (int i = 0; i < count; ++i) {
    cells.push_back({i, spacing_m * static_cast<double>(i), band});
  }
  return cells;
}

/// Walks the UE from 0 to `end_m` at `speed` and returns the engine.
wr::A3HandoffEngine walk(wr::A3HandoffEngine engine, double end_m,
                         double speed_mps) {
  double pos = 0.0;
  while (pos < end_m) {
    pos += speed_mps * 0.1;
    engine.step(0.1, pos);
  }
  return engine;
}

}  // namespace

TEST(A3, StationaryUeNearCellCenterNeverHandsOff) {
  wr::HandoffConfig config;
  config.shadowing_sigma_db = 2.0;
  wr::A3HandoffEngine engine(line_of_cells(5, 1000.0, wr::Band::kLte),
                             config, Rng(1));
  for (int i = 0; i < 600; ++i) {
    engine.step(0.1, 0.0);  // parked at cell 0's site
  }
  EXPECT_EQ(engine.handoff_count(), 0);
  EXPECT_EQ(engine.serving_cell(), 0);
}

TEST(A3, DriveThroughCellsHandsOffAboutOncePerCell) {
  wr::HandoffConfig config;
  wr::A3HandoffEngine engine(line_of_cells(10, 800.0, wr::Band::kLte),
                             config, Rng(2));
  const auto done = walk(std::move(engine), 7600.0, 15.0);
  // 9 boundaries; shadowing can add or suppress a couple.
  EXPECT_GE(done.handoff_count(), 6);
  EXPECT_LE(done.handoff_count(), 16);
  EXPECT_GE(done.serving_cell(), 8);
}

TEST(A3, HigherHysteresisFewerHandoffs) {
  auto run = [](double hysteresis_db) {
    wr::HandoffConfig config;
    config.hysteresis_db = hysteresis_db;
    wr::A3HandoffEngine engine(line_of_cells(12, 600.0, wr::Band::kLte),
                               config, Rng(3));
    return walk(std::move(engine), 6600.0, 14.0).handoff_count();
  };
  EXPECT_GE(run(0.0), run(6.0));
}

TEST(A3, LongerTttSuppressesPingPong) {
  auto pingpongs = [](double ttt_ms) {
    wr::HandoffConfig config;
    config.hysteresis_db = 0.5;
    config.time_to_trigger_ms = ttt_ms;
    config.shadowing_sigma_db = 6.0;
    int total = 0;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      wr::A3HandoffEngine engine(line_of_cells(12, 600.0, wr::Band::kLte),
                                 config, Rng(seed));
      total += walk(std::move(engine), 6600.0, 14.0).pingpong_count();
    }
    return total;
  };
  EXPECT_GE(pingpongs(0.0), pingpongs(640.0));
}

TEST(A3, MmWaveCellsHandOffMuchMoreOften) {
  // Tiny mmWave footprints vs big low-band cells: same route, same engine.
  auto run = [](wr::Band band, double spacing) {
    wr::HandoffConfig config;
    wr::A3HandoffEngine engine(
        line_of_cells(static_cast<int>(6000.0 / spacing) + 2, spacing, band),
        config, Rng(4));
    return walk(std::move(engine), 6000.0, 14.0).handoff_count();
  };
  EXPECT_GT(run(wr::Band::kNrMmWave, 200.0),
            2 * run(wr::Band::kNrLowBand, 2500.0));
}

TEST(A3, RejectsEmptyCellList) {
  EXPECT_THROW(wr::A3HandoffEngine({}, {}, Rng(5)), wild5g::Error);
}

TEST(A3, StepRequiresPositiveDt) {
  wr::A3HandoffEngine engine(line_of_cells(2, 500.0, wr::Band::kLte), {},
                             Rng(6));
  EXPECT_THROW((void)engine.step(0.0, 0.0), wild5g::Error);
}

// --- boundary-condition regressions (semantics pinned in handoff.h) -------

namespace {

/// Shadowing-free config: every RSRP is pure geometry, so the boundary
/// cases below are exact, not probabilistic.
wr::HandoffConfig exact_config(double hysteresis_db, double ttt_ms) {
  wr::HandoffConfig config;
  config.hysteresis_db = hysteresis_db;
  config.time_to_trigger_ms = ttt_ms;
  config.shadowing_sigma_db = 0.0;
  return config;
}

}  // namespace

TEST(A3Boundary, SingleCellNeverHandsOff) {
  wr::A3HandoffEngine engine({{0, 0.0, wr::Band::kLte}},
                             exact_config(0.0, 0.0), Rng(1));
  for (int i = 0; i < 1000; ++i) {
    const auto result = engine.step(0.1, static_cast<double>(i) * 20.0);
    EXPECT_FALSE(result.handed_off);
  }
  EXPECT_EQ(engine.handoff_count(), 0);
  EXPECT_EQ(engine.serving_cell(), 0);
}

TEST(A3Boundary, ExactTieNeverEntersEvenAtZeroHysteresis) {
  // UE parked exactly midway: both cells are byte-identical in RSRP. The
  // entering condition is strict, so a tie must never start the timer —
  // at hysteresis 0 this is what keeps tied cells from flapping forever.
  wr::A3HandoffEngine engine(line_of_cells(2, 1000.0, wr::Band::kLte),
                             exact_config(0.0, 0.0), Rng(2));
  for (int i = 0; i < 200; ++i) {
    EXPECT_FALSE(engine.step(0.1, 500.0).handed_off);
  }
  EXPECT_EQ(engine.handoff_count(), 0);
}

TEST(A3Boundary, ExactlyHysteresisStrongerDoesNotEnter) {
  // Cells at 0 and 1100 m, UE at 1000 m: distances 1000 and 100, so the
  // RSRP gap is exactly pathloss_slope * (log10(1000) - log10(100)) =
  // 23.0 dB on LTE — representable exactly. A neighbor exactly
  // hysteresis_db stronger must NOT satisfy the strict A3 condition...
  const std::vector<wr::CellSite> cells = {{0, 0.0, wr::Band::kLte},
                                           {1, 1100.0, wr::Band::kLte}};
  wr::A3HandoffEngine at_threshold(cells, exact_config(23.0, 0.0), Rng(3));
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(at_threshold.step(0.1, 1000.0).handed_off);
  }
  EXPECT_EQ(at_threshold.handoff_count(), 0);
  // ...while one hair under the gap hands off immediately at TTT 0.
  wr::A3HandoffEngine below(cells, exact_config(22.9, 0.0), Rng(3));
  EXPECT_TRUE(below.step(0.1, 1000.0).handed_off);
  EXPECT_EQ(below.serving_cell(), 1);
}

TEST(A3Boundary, TttFiresOnTheExactThresholdStep) {
  // Neighbor strictly stronger from step 1. dt = 0.125 s (exact in binary)
  // accumulates 125 ms of dwell per step after the observing step, so with
  // TTT = 375 ms the timer reads 0, 125, 250, 375: the handoff must fire
  // on step 4 exactly — TTT is inclusive (>=), and dwell accumulates per
  // step instead of subtracting absolute clocks.
  const std::vector<wr::CellSite> cells = {{0, 0.0, wr::Band::kLte},
                                           {1, 200.0, wr::Band::kLte}};
  wr::A3HandoffEngine engine(cells, exact_config(0.0, 375.0), Rng(4));
  EXPECT_FALSE(engine.step(0.125, 150.0).handed_off);  // observes, dwell 0
  EXPECT_FALSE(engine.step(0.125, 150.0).handed_off);  // 125 ms
  EXPECT_FALSE(engine.step(0.125, 150.0).handed_off);  // 250 ms
  EXPECT_TRUE(engine.step(0.125, 150.0).handed_off);   // 375 ms: fires
  EXPECT_EQ(engine.serving_cell(), 1);
  EXPECT_EQ(engine.handoff_count(), 1);
}

TEST(A3Boundary, ZeroTttFiresOnTheObservingStep) {
  const std::vector<wr::CellSite> cells = {{0, 0.0, wr::Band::kLte},
                                           {1, 200.0, wr::Band::kLte}};
  wr::A3HandoffEngine engine(cells, exact_config(0.0, 0.0), Rng(5));
  EXPECT_TRUE(engine.step(0.1, 150.0).handed_off);
}

TEST(A3Boundary, CandidateChangeRestartsTheTimer) {
  // Three cells; the strongest neighbor flips from 1 to 2 mid-dwell. The
  // timer must restart for the new candidate instead of inheriting the
  // old candidate's dwell.
  const std::vector<wr::CellSite> cells = {{0, 0.0, wr::Band::kLte},
                                           {1, 400.0, wr::Band::kLte},
                                           {2, 800.0, wr::Band::kLte}};
  wr::A3HandoffEngine engine(cells, exact_config(0.0, 200.0), Rng(6));
  EXPECT_FALSE(engine.step(0.1, 300.0).handed_off);  // observes cell 1
  EXPECT_FALSE(engine.step(0.1, 300.0).handed_off);  // dwell 100 ms
  // Jump next to cell 2: new candidate, dwell restarts at 0.
  EXPECT_FALSE(engine.step(0.1, 700.0).handed_off);  // observes cell 2
  EXPECT_FALSE(engine.step(0.1, 700.0).handed_off);  // dwell 100 ms
  EXPECT_TRUE(engine.step(0.1, 700.0).handed_off);   // dwell 200 ms: fires
  EXPECT_EQ(engine.serving_cell(), 2);
}

TEST(A3Boundary, TiedCandidatesResolveToLowestIndex) {
  // Neighbors 1 and 2 sit exactly 100 m from the UE (positions 900 and
  // 1100, UE at 1000): byte-identical RSRP. The strict best-neighbor scan
  // must keep the lowest index.
  const std::vector<wr::CellSite> cells = {{0, 0.0, wr::Band::kLte},
                                           {1, 900.0, wr::Band::kLte},
                                           {2, 1100.0, wr::Band::kLte}};
  wr::A3HandoffEngine engine(cells, exact_config(0.0, 0.0), Rng(7));
  EXPECT_TRUE(engine.step(0.1, 1000.0).handed_off);
  EXPECT_EQ(engine.serving_cell(), 1);
}

TEST(A3Boundary, InitialServingIsRespectedAndValidated) {
  const auto cells = line_of_cells(5, 1000.0, wr::Band::kLte);
  wr::A3HandoffEngine engine(cells, exact_config(3.0, 0.0), Rng(8), 3);
  EXPECT_EQ(engine.serving_cell(), 3);
  // Parked at its own site, a UE attached to cell 3 stays there.
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(engine.step(0.1, 3000.0).handed_off);
  }
  EXPECT_THROW(wr::A3HandoffEngine(cells, exact_config(0.0, 0.0), Rng(9), 5),
               wild5g::Error);
  EXPECT_THROW(wr::A3HandoffEngine(cells, exact_config(0.0, 0.0), Rng(9), -1),
               wild5g::Error);
}

TEST(A3Boundary, EventsRecordCompletedHandoffsInOrder) {
  const std::vector<wr::CellSite> cells = {{0, 0.0, wr::Band::kLte},
                                           {1, 200.0, wr::Band::kLte}};
  wr::A3HandoffEngine engine(cells, exact_config(0.0, 0.0), Rng(10));
  (void)engine.step(0.1, 150.0);  // 0 -> 1
  (void)engine.step(0.1, 50.0);   // 1 -> 0
  ASSERT_EQ(engine.events().size(), 2u);
  EXPECT_EQ(engine.events()[0].from, 0);
  EXPECT_EQ(engine.events()[0].to, 1);
  EXPECT_EQ(engine.events()[1].from, 1);
  EXPECT_EQ(engine.events()[1].to, 0);
  EXPECT_LT(engine.events()[0].t_s, engine.events()[1].t_s);
  EXPECT_EQ(engine.pingpong_count(5.0), 1);
}
