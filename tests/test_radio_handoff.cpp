// Tests for the A3-event handoff engine.
#include "radio/handoff.h"

#include <gtest/gtest.h>

#include "core/error.h"
#include "core/rng.h"

namespace wr = wild5g::radio;
using wild5g::Rng;

namespace {

std::vector<wr::CellSite> line_of_cells(int count, double spacing_m,
                                        wr::Band band) {
  std::vector<wr::CellSite> cells;
  for (int i = 0; i < count; ++i) {
    cells.push_back({i, spacing_m * static_cast<double>(i), band});
  }
  return cells;
}

/// Walks the UE from 0 to `end_m` at `speed` and returns the engine.
wr::A3HandoffEngine walk(wr::A3HandoffEngine engine, double end_m,
                         double speed_mps) {
  double pos = 0.0;
  while (pos < end_m) {
    pos += speed_mps * 0.1;
    engine.step(0.1, pos);
  }
  return engine;
}

}  // namespace

TEST(A3, StationaryUeNearCellCenterNeverHandsOff) {
  wr::HandoffConfig config;
  config.shadowing_sigma_db = 2.0;
  wr::A3HandoffEngine engine(line_of_cells(5, 1000.0, wr::Band::kLte),
                             config, Rng(1));
  for (int i = 0; i < 600; ++i) {
    engine.step(0.1, 0.0);  // parked at cell 0's site
  }
  EXPECT_EQ(engine.handoff_count(), 0);
  EXPECT_EQ(engine.serving_cell(), 0);
}

TEST(A3, DriveThroughCellsHandsOffAboutOncePerCell) {
  wr::HandoffConfig config;
  wr::A3HandoffEngine engine(line_of_cells(10, 800.0, wr::Band::kLte),
                             config, Rng(2));
  const auto done = walk(std::move(engine), 7600.0, 15.0);
  // 9 boundaries; shadowing can add or suppress a couple.
  EXPECT_GE(done.handoff_count(), 6);
  EXPECT_LE(done.handoff_count(), 16);
  EXPECT_GE(done.serving_cell(), 8);
}

TEST(A3, HigherHysteresisFewerHandoffs) {
  auto run = [](double hysteresis_db) {
    wr::HandoffConfig config;
    config.hysteresis_db = hysteresis_db;
    wr::A3HandoffEngine engine(line_of_cells(12, 600.0, wr::Band::kLte),
                               config, Rng(3));
    return walk(std::move(engine), 6600.0, 14.0).handoff_count();
  };
  EXPECT_GE(run(0.0), run(6.0));
}

TEST(A3, LongerTttSuppressesPingPong) {
  auto pingpongs = [](double ttt_ms) {
    wr::HandoffConfig config;
    config.hysteresis_db = 0.5;
    config.time_to_trigger_ms = ttt_ms;
    config.shadowing_sigma_db = 6.0;
    int total = 0;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      wr::A3HandoffEngine engine(line_of_cells(12, 600.0, wr::Band::kLte),
                                 config, Rng(seed));
      total += walk(std::move(engine), 6600.0, 14.0).pingpong_count();
    }
    return total;
  };
  EXPECT_GE(pingpongs(0.0), pingpongs(640.0));
}

TEST(A3, MmWaveCellsHandOffMuchMoreOften) {
  // Tiny mmWave footprints vs big low-band cells: same route, same engine.
  auto run = [](wr::Band band, double spacing) {
    wr::HandoffConfig config;
    wr::A3HandoffEngine engine(
        line_of_cells(static_cast<int>(6000.0 / spacing) + 2, spacing, band),
        config, Rng(4));
    return walk(std::move(engine), 6000.0, 14.0).handoff_count();
  };
  EXPECT_GT(run(wr::Band::kNrMmWave, 200.0),
            2 * run(wr::Band::kNrLowBand, 2500.0));
}

TEST(A3, RejectsEmptyCellList) {
  EXPECT_THROW(wr::A3HandoffEngine({}, {}, Rng(5)), wild5g::Error);
}

TEST(A3, StepRequiresPositiveDt) {
  wr::A3HandoffEngine engine(line_of_cells(2, 500.0, wr::Band::kLte), {},
                             Rng(6));
  EXPECT_THROW((void)engine.step(0.0, 0.0), wild5g::Error);
}
