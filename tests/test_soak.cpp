// Chaos soak suite (`ctest -R soak`): drives the wild5g_serve binary over
// real pipes and gates the service-mode guarantees of DESIGN.md section 12:
//
//   - determinism: a submitted (campaign, seed, params, fault_plan) produces
//     a byte-identical frame/done/result event stream on every run and at
//     every --threads count;
//   - chaos resume: SIGKILL the service mid-campaign, resume from the last
//     checkpoint in a fresh service, and the spliced frame stream plus the
//     final result document are byte-identical to an uninterrupted run;
//   - uptime invariant: every job the service ever accepted ends in exactly
//     one of {completed, cancelled, deadline_partial} — reported in the bye
//     event — and the service itself always exits 0 unless killed outright.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/json.h"

namespace {

using namespace wild5g;

// A stuck pipe read would otherwise hang the whole test run; any soak test
// taking minutes has already failed.
struct AlarmGuard {
  AlarmGuard() { ::alarm(300); }
} g_alarm_guard;

/// One wild5g_serve child process with its stdin/stdout piped to the test.
class ServeClient {
 public:
  explicit ServeClient(const std::vector<std::string>& extra_args = {}) {
    int to_child[2];
    int from_child[2];
    if (::pipe(to_child) != 0 || ::pipe(from_child) != 0) {
      ADD_FAILURE() << "pipe() failed: " << std::strerror(errno);
      return;
    }
    pid_ = ::fork();
    if (pid_ == 0) {
      ::dup2(to_child[0], 0);
      ::dup2(from_child[1], 1);
      ::close(to_child[0]);
      ::close(to_child[1]);
      ::close(from_child[0]);
      ::close(from_child[1]);
      std::vector<std::string> args = {WILD5G_SERVE_BIN};
      args.insert(args.end(), extra_args.begin(), extra_args.end());
      std::vector<char*> argv;
      for (auto& arg : args) argv.push_back(arg.data());
      argv.push_back(nullptr);
      ::execv(argv[0], argv.data());
      std::perror("execv wild5g_serve");
      ::_exit(127);
    }
    ::close(to_child[0]);
    ::close(from_child[1]);
    stdin_fd_ = to_child[1];
    stdout_ = ::fdopen(from_child[0], "r");
  }

  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;

  ~ServeClient() {
    close_stdin();
    if (stdout_ != nullptr) std::fclose(stdout_);
    if (pid_ > 0 && !reaped_) {
      ::kill(pid_, SIGKILL);
      int status = 0;
      ::waitpid(pid_, &status, 0);
    }
  }

  void send(const std::string& line) {
    const std::string framed = line + "\n";
    ASSERT_EQ(::write(stdin_fd_, framed.data(), framed.size()),
              static_cast<ssize_t>(framed.size()));
  }

  void close_stdin() {
    if (stdin_fd_ >= 0) {
      ::close(stdin_fd_);
      stdin_fd_ = -1;
    }
  }

  /// Blocking read of the next event line; false on EOF (service exited).
  bool read_line(std::string* line) {
    char* raw = nullptr;
    std::size_t cap = 0;
    const ssize_t n = ::getline(&raw, &cap, stdout_);
    if (n <= 0) {
      std::free(raw);
      return false;
    }
    line->assign(raw, static_cast<std::size_t>(n));
    while (!line->empty() && line->back() == '\n') line->pop_back();
    std::free(raw);
    return true;
  }

  /// Reads the next event whose "event" field matches; fails the test (and
  /// returns null) on EOF. Every line seen on the way is kept in `lines`.
  json::Value read_until_event(const std::string& name,
                               std::vector<std::string>* lines = nullptr) {
    std::string line;
    while (read_line(&line)) {
      if (lines != nullptr) lines->push_back(line);
      const json::Value event = json::parse(line);
      if (event.find("event")->as_string() == name) return event;
    }
    ADD_FAILURE() << "service hung up before emitting '" << name << "'";
    return json::Value();
  }

  std::vector<std::string> read_to_eof() {
    std::vector<std::string> lines;
    std::string line;
    while (read_line(&line)) lines.push_back(line);
    return lines;
  }

  void signal(int signo) { ::kill(pid_, signo); }

  /// Reaps the child: exit code for a normal exit, 128+signo for a killed
  /// one (SIGKILL in the chaos test is expected, anything else is not).
  int wait() {
    int status = 0;
    ::waitpid(pid_, &status, 0);
    reaped_ = true;
    if (WIFEXITED(status)) return WEXITSTATUS(status);
    if (WIFSIGNALED(status)) return 128 + WTERMSIG(status);
    return -1;
  }

 private:
  pid_t pid_ = -1;
  int stdin_fd_ = -1;
  FILE* stdout_ = nullptr;
  bool reaped_ = false;
};

// --- event-stream helpers ---------------------------------------------------

/// The deterministic skeleton of a run: the frame/done/result lines for one
/// job, in emission order. hello/accepted/ckpt/status lines are protocol
/// envelope, not campaign output, so the byte-identity gate compares this.
std::vector<std::string> campaign_stream(const std::vector<std::string>& lines,
                                         const std::string& id) {
  std::vector<std::string> stream;
  for (const auto& line : lines) {
    const json::Value event = json::parse(line);
    const std::string name = event.find("event")->as_string();
    if (name != "frame" && name != "done" && name != "result") continue;
    const json::Value* event_id = event.find("id");
    if (event_id != nullptr && event_id->as_string() == id) {
      stream.push_back(line);
    }
  }
  return stream;
}

const json::Value* find_event(const std::vector<json::Value>& events,
                              const std::string& name,
                              const std::string& id = "") {
  for (const auto& event : events) {
    if (event.find("event")->as_string() != name) continue;
    if (!id.empty()) {
      const json::Value* event_id = event.find("id");
      if (event_id == nullptr || event_id->as_string() != id) continue;
    }
    return &event;
  }
  return nullptr;
}

std::vector<json::Value> parse_all(const std::vector<std::string>& lines) {
  std::vector<json::Value> events;
  events.reserve(lines.size());
  for (const auto& line : lines) events.push_back(json::parse(line));
  return events;
}

/// The uptime invariant: the bye event lists every accepted job in exactly
/// one terminal state.
void expect_uptime_invariant(const std::vector<json::Value>& events) {
  const json::Value* bye = find_event(events, "bye");
  ASSERT_NE(bye, nullptr) << "service exited without a bye event";
  static const std::set<std::string> kTerminal = {"completed", "cancelled",
                                                  "deadline_partial"};
  for (const auto& entry : bye->find("jobs")->as_array()) {
    EXPECT_TRUE(kTerminal.count(entry.find("state")->as_string()) == 1)
        << "job '" << entry.find("id")->as_string()
        << "' ended in non-terminal state '"
        << entry.find("state")->as_string() << "'";
  }
}

// A drive_soak submit with a radio fault plan — the chaos campaign the
// determinism and kill/resume gates run. Long enough (10 intervals) that a
// SIGKILL after the third checkpoint lands mid-run.
std::string soak_submit(const std::string& id,
                        const std::string& checkpoint_path = "",
                        int deadline_steps = 0) {
  std::string line =
      "{\"op\":\"submit\",\"id\":\"" + id +
      "\",\"campaign\":\"drive_soak\",\"seed\":\"987654321\","
      "\"params\":{\"intervals\":10,\"interval_s\":30,\"cells\":3,"
      "\"ues\":10},"
      "\"fault_plan\":{\"name\":\"soak_weather\",\"seed_salt\":3,"
      "\"windows\":["
      "{\"kind\":\"mmwave_blockage\",\"start_s\":40,\"duration_s\":60,"
      "\"magnitude\":20},"
      "{\"kind\":\"nr_to_lte_outage\",\"start_s\":150,\"duration_s\":45,"
      "\"magnitude\":0.3}]}";
  if (!checkpoint_path.empty()) {
    line += ",\"checkpoint_path\":\"" + checkpoint_path + "\"";
  }
  if (deadline_steps > 0) {
    line += ",\"deadline_steps\":" + std::to_string(deadline_steps);
  }
  return line + "}";
}

std::string sleeper_submit(const std::string& id, int steps,
                           int sleep_ms = 0) {
  return "{\"op\":\"submit\",\"id\":\"" + id +
         "\",\"campaign\":\"sleeper\",\"seed\":\"11\",\"params\":{\"steps\":" +
         std::to_string(steps) +
         ",\"sleep_ms\":" + std::to_string(sleep_ms) + "}}";
}

// --- tests ------------------------------------------------------------------

TEST(soak, batch_client_submits_closes_stdin_and_reads_every_result) {
  ServeClient serve;
  serve.send(soak_submit("j1"));
  serve.close_stdin();  // graceful drain: queued work still runs to done
  const std::vector<std::string> lines = serve.read_to_eof();
  EXPECT_EQ(serve.wait(), 0);
  ASSERT_FALSE(lines.empty());

  const std::vector<json::Value> events = parse_all(lines);
  // hello is the first event and advertises the protocol + registry.
  EXPECT_EQ(events.front().find("event")->as_string(), "hello");
  EXPECT_EQ(events.front().find("protocol")->as_number(), 1.0);
  std::set<std::string> campaigns;
  for (const auto& name : events.front().find("campaigns")->as_array()) {
    campaigns.insert(name.as_string());
  }
  EXPECT_EQ(campaigns.count("drive_soak"), 1u);
  EXPECT_EQ(campaigns.count("sleeper"), 1u);

  const json::Value* accepted = find_event(events, "accepted", "j1");
  ASSERT_NE(accepted, nullptr);
  const auto total =
      static_cast<std::size_t>(accepted->find("total_steps")->as_number());
  ASSERT_GT(total, 0u);

  // One frame per step, strictly in step order.
  std::size_t next_expected = 0;
  for (const auto& event : events) {
    if (event.find("event")->as_string() != "frame") continue;
    EXPECT_EQ(event.find("step")->as_number(),
              static_cast<double>(next_expected));
    ++next_expected;
  }
  EXPECT_EQ(next_expected, total);

  const json::Value* done = find_event(events, "done", "j1");
  ASSERT_NE(done, nullptr);
  EXPECT_EQ(done->find("status")->as_string(), "completed");
  EXPECT_EQ(done->find("next_step")->as_number(), static_cast<double>(total));

  const json::Value* result = find_event(events, "result", "j1");
  ASSERT_NE(result, nullptr);
  EXPECT_EQ(result->find("document")->find("bench")->as_string(),
            "drive_soak");
  expect_uptime_invariant(events);
}

TEST(soak, frame_stream_is_byte_identical_across_runs_and_thread_counts) {
  auto run = [](const std::vector<std::string>& args) {
    ServeClient serve(args);
    serve.send(soak_submit("j1"));
    serve.close_stdin();
    const std::vector<std::string> lines = serve.read_to_eof();
    EXPECT_EQ(serve.wait(), 0);
    return campaign_stream(lines, "j1");
  };
  const std::vector<std::string> serial_a = run({"--threads", "1"});
  const std::vector<std::string> serial_b = run({"--threads", "1"});
  const std::vector<std::string> parallel_8 = run({"--threads", "8"});
  ASSERT_FALSE(serial_a.empty());
  EXPECT_EQ(serial_a, serial_b) << "same submit, two runs, different bytes";
  EXPECT_EQ(serial_a, parallel_8)
      << "thread count leaked into the campaign event stream";
}

TEST(soak, sigkill_mid_campaign_then_resume_is_byte_identical) {
  // Reference: the uninterrupted stream.
  std::vector<std::string> reference;
  {
    ServeClient serve;
    serve.send(soak_submit("j1"));
    serve.close_stdin();
    reference = campaign_stream(serve.read_to_eof(), "j1");
    EXPECT_EQ(serve.wait(), 0);
  }
  ASSERT_FALSE(reference.empty());
  std::map<std::size_t, std::string> reference_frames;
  std::string reference_result;
  for (const auto& line : reference) {
    const json::Value event = json::parse(line);
    const std::string name = event.find("event")->as_string();
    if (name == "frame") {
      reference_frames[static_cast<std::size_t>(
          event.find("step")->as_number())] = line;
    } else if (name == "result") {
      reference_result = line;
    }
  }
  ASSERT_FALSE(reference_result.empty());

  // Chaos: same submit with checkpoints on; SIGKILL — no cleanup, no
  // handler — once the third checkpoint has hit the disk.
  const std::string ckpt = ::testing::TempDir() + "wild5g_soak_" +
                           std::to_string(::getpid()) + ".ckpt";
  std::remove(ckpt.c_str());
  std::size_t killed_after_step = 0;
  {
    ServeClient serve;
    serve.send(soak_submit("j1", ckpt));
    std::vector<std::string> seen;
    std::string line;
    while (serve.read_line(&line)) {
      seen.push_back(line);
      const json::Value event = json::parse(line);
      if (event.find("event")->as_string() != "ckpt") continue;
      killed_after_step =
          static_cast<std::size_t>(event.find("next_step")->as_number());
      if (killed_after_step >= 3) break;
    }
    ASSERT_GE(killed_after_step, 3u) << "service finished before the kill";
    serve.signal(SIGKILL);
    EXPECT_EQ(serve.wait(), 128 + SIGKILL);
    // Frames emitted before the kill must already match the reference.
    for (const auto& pre : campaign_stream(seen, "j1")) {
      const json::Value event = json::parse(pre);
      if (event.find("event")->as_string() != "frame") continue;
      const auto step =
          static_cast<std::size_t>(event.find("step")->as_number());
      EXPECT_EQ(pre, reference_frames.at(step));
    }
  }

  // Resume in a fresh service: the stream continues exactly where the
  // snapshot says, and the final document is byte-identical.
  {
    ServeClient serve;
    serve.send("{\"op\":\"resume\",\"id\":\"j1\",\"snapshot_path\":\"" +
               ckpt + "\"}");
    serve.close_stdin();
    const std::vector<std::string> lines = serve.read_to_eof();
    EXPECT_EQ(serve.wait(), 0);
    const std::vector<json::Value> events = parse_all(lines);

    const json::Value* accepted = find_event(events, "accepted", "j1");
    ASSERT_NE(accepted, nullptr);
    const auto start =
        static_cast<std::size_t>(accepted->find("start_step")->as_number());
    EXPECT_GE(start, 3u) << "resume ignored the snapshot's progress";

    std::size_t expected_step = start;
    std::string resumed_result;
    for (const auto& line : campaign_stream(lines, "j1")) {
      const json::Value event = json::parse(line);
      const std::string name = event.find("event")->as_string();
      if (name == "frame") {
        ASSERT_EQ(event.find("step")->as_number(),
                  static_cast<double>(expected_step));
        EXPECT_EQ(line, reference_frames.at(expected_step))
            << "resumed frame " << expected_step
            << " diverged from the uninterrupted run";
        ++expected_step;
      } else if (name == "result") {
        resumed_result = line;
      }
    }
    EXPECT_EQ(expected_step, reference_frames.size())
        << "resumed run did not finish the remaining steps";
    EXPECT_EQ(resumed_result, reference_result)
        << "splice is not byte-identical to the uninterrupted document";

    const json::Value* done = find_event(events, "done", "j1");
    ASSERT_NE(done, nullptr);
    EXPECT_EQ(done->find("status")->as_string(), "completed");
    expect_uptime_invariant(events);
  }
  std::remove(ckpt.c_str());
}

TEST(soak, deadline_steps_ends_in_deadline_partial_with_a_result) {
  ServeClient serve;
  serve.send(soak_submit("j1", "", /*deadline_steps=*/2));
  serve.close_stdin();
  const std::vector<std::string> lines = serve.read_to_eof();
  EXPECT_EQ(serve.wait(), 0);
  const std::vector<json::Value> events = parse_all(lines);

  std::size_t frames = 0;
  for (const auto& event : events) {
    if (event.find("event")->as_string() == "frame") ++frames;
  }
  EXPECT_EQ(frames, 2u);

  const json::Value* done = find_event(events, "done", "j1");
  ASSERT_NE(done, nullptr);
  EXPECT_EQ(done->find("status")->as_string(), "deadline_partial");
  EXPECT_EQ(done->find("next_step")->as_number(), 2.0);
  // A deadline is a supervised outcome: the partial document still ships.
  EXPECT_NE(find_event(events, "result", "j1"), nullptr);
  expect_uptime_invariant(events);
}

TEST(soak, watchdog_reaps_stuck_campaign_and_the_service_survives) {
  ServeClient serve({"--watchdog-ms", "100"});
  // "stuck": every step dwells 600 ms, six times the watchdog budget.
  serve.send(sleeper_submit("stuck", /*steps=*/3, /*sleep_ms=*/600));
  serve.send(sleeper_submit("next", /*steps=*/2));
  serve.close_stdin();
  const std::vector<std::string> lines = serve.read_to_eof();
  EXPECT_EQ(serve.wait(), 0) << "a stuck campaign took the service down";
  const std::vector<json::Value> events = parse_all(lines);

  EXPECT_NE(find_event(events, "watchdog", "stuck"), nullptr)
      << "watchdog never fired";
  const json::Value* stuck_done = find_event(events, "done", "stuck");
  ASSERT_NE(stuck_done, nullptr);
  EXPECT_EQ(stuck_done->find("status")->as_string(), "cancelled");

  // The queue keeps draining after the reap: the next job completes.
  const json::Value* next_done = find_event(events, "done", "next");
  ASSERT_NE(next_done, nullptr);
  EXPECT_EQ(next_done->find("status")->as_string(), "completed");
  EXPECT_NE(find_event(events, "result", "next"), nullptr);
  expect_uptime_invariant(events);
}

TEST(soak, sigterm_fast_drains_and_exits_zero) {
  ServeClient serve;
  serve.send(sleeper_submit("j1", /*steps=*/50, /*sleep_ms=*/50));
  std::vector<std::string> lines;
  // Wait for proof the campaign is actually running before pulling the plug.
  serve.read_until_event("frame", &lines);
  serve.signal(SIGTERM);
  for (const auto& line : serve.read_to_eof()) lines.push_back(line);
  EXPECT_EQ(serve.wait(), 0) << "graceful shutdown must exit 0";
  const std::vector<json::Value> events = parse_all(lines);

  const json::Value* done = find_event(events, "done", "j1");
  ASSERT_NE(done, nullptr);
  EXPECT_EQ(done->find("status")->as_string(), "cancelled");
  expect_uptime_invariant(events);
}

TEST(soak, cancel_op_stops_a_queued_job_before_it_runs) {
  ServeClient serve;
  serve.send(sleeper_submit("running", /*steps=*/5, /*sleep_ms=*/200));
  serve.send(sleeper_submit("queued", /*steps=*/3));
  serve.send("{\"op\":\"cancel\",\"id\":\"queued\"}");
  serve.send("{\"op\":\"status\"}");
  serve.close_stdin();
  const std::vector<std::string> lines = serve.read_to_eof();
  EXPECT_EQ(serve.wait(), 0);
  const std::vector<json::Value> events = parse_all(lines);

  const json::Value* cancelled = find_event(events, "done", "queued");
  ASSERT_NE(cancelled, nullptr);
  EXPECT_EQ(cancelled->find("status")->as_string(), "cancelled");
  EXPECT_EQ(cancelled->find("steps_executed")->as_number(), 0.0)
      << "a cancelled queued job must never execute a step";
  EXPECT_EQ(find_event(events, "result", "queued"), nullptr);

  const json::Value* done = find_event(events, "done", "running");
  ASSERT_NE(done, nullptr);
  EXPECT_EQ(done->find("status")->as_string(), "completed");

  const json::Value* status = find_event(events, "status");
  ASSERT_NE(status, nullptr);
  EXPECT_EQ(status->find("jobs")->as_array().size(), 2u);
  expect_uptime_invariant(events);
}

TEST(soak, protocol_errors_do_not_take_the_service_down) {
  ServeClient serve;
  serve.send("this is not json");
  serve.send("{\"op\":\"frobnicate\"}");
  serve.send("{\"op\":\"submit\",\"id\":\"x\",\"campaign\":\"no_such\"}");
  serve.send("{\"op\":\"cancel\",\"id\":\"never_submitted\"}");
  serve.send(sleeper_submit("j1", /*steps=*/2));
  serve.close_stdin();
  const std::vector<std::string> lines = serve.read_to_eof();
  EXPECT_EQ(serve.wait(), 0) << "bad requests crashed the service";
  const std::vector<json::Value> events = parse_all(lines);

  std::size_t errors = 0;
  for (const auto& event : events) {
    if (event.find("event")->as_string() == "error") ++errors;
  }
  EXPECT_EQ(errors, 4u);

  // The job submitted after the garbage still runs to completion.
  const json::Value* done = find_event(events, "done", "j1");
  ASSERT_NE(done, nullptr);
  EXPECT_EQ(done->find("status")->as_string(), "completed");
  expect_uptime_invariant(events);
}

}  // namespace
