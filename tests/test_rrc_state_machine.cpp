// Tests for RRC configs (Table 7) and the ground-truth state machine.
#include "rrc/state_machine.h"

#include <gtest/gtest.h>

#include "core/error.h"
#include "core/rng.h"
#include "rrc/rrc_config.h"

namespace wr = wild5g::rrc;
using wr::RrcState;

TEST(Config, Table7HasAllSixNetworks) {
  const auto profiles = wr::table7_profiles();
  ASSERT_EQ(profiles.size(), 6u);
  EXPECT_EQ(profiles[0].config.name, "T-Mobile SA low-band");
  EXPECT_EQ(profiles[5].config.name, "Verizon 4G");
}

TEST(Config, LookupByNameWorksAndThrows) {
  EXPECT_EQ(wr::profile_by_name("Verizon NSA mmWave").config.inactivity_timer_ms,
            10500.0);
  EXPECT_THROW((void)wr::profile_by_name("Sprint 6G"), wild5g::Error);
}

TEST(Config, OnlySaHasInactiveState) {
  for (const auto& profile : wr::table7_profiles()) {
    if (profile.config.is_sa()) {
      EXPECT_TRUE(profile.config.inactive_hold_ms.has_value());
    } else {
      EXPECT_FALSE(profile.config.inactive_hold_ms.has_value());
    }
  }
}

TEST(Config, DualTailOnlyOnNsaLowBand) {
  EXPECT_TRUE(wr::profile_by_name("T-Mobile NSA low-band")
                  .config.anchor_tail_ms.has_value());
  EXPECT_TRUE(wr::profile_by_name("Verizon NSA low-band (DSS)")
                  .config.anchor_tail_ms.has_value());
  EXPECT_FALSE(
      wr::profile_by_name("Verizon NSA mmWave").config.anchor_tail_ms);
  EXPECT_FALSE(wr::profile_by_name("Verizon 4G").config.anchor_tail_ms);
}

// State after gap across the config grid.
class StateAfterGap : public ::testing::TestWithParam<std::size_t> {};

TEST_P(StateAfterGap, BoundariesRespected) {
  const auto& profile = wr::table7_profiles()[GetParam()];
  const auto& config = profile.config;

  EXPECT_EQ(wr::state_after_gap(config, 0.0), RrcState::kConnected);
  EXPECT_EQ(wr::state_after_gap(config, config.inactivity_timer_ms - 1.0),
            RrcState::kConnected);

  const double just_after = config.inactivity_timer_ms + 1.0;
  if (config.anchor_tail_ms) {
    EXPECT_EQ(wr::state_after_gap(config, just_after),
              RrcState::kConnectedAnchor);
    EXPECT_EQ(wr::state_after_gap(config, *config.anchor_tail_ms + 1.0),
              RrcState::kIdle);
  } else if (config.inactive_hold_ms) {
    EXPECT_EQ(wr::state_after_gap(config, just_after), RrcState::kInactive);
    EXPECT_EQ(wr::state_after_gap(
                  config, config.inactivity_timer_ms +
                              *config.inactive_hold_ms + 1.0),
              RrcState::kIdle);
  } else {
    EXPECT_EQ(wr::state_after_gap(config, just_after), RrcState::kIdle);
  }
  EXPECT_EQ(wr::state_after_gap(config, 120000.0), RrcState::kIdle);
}

INSTANTIATE_TEST_SUITE_P(AllProfiles, StateAfterGap,
                         ::testing::Values(0u, 1u, 2u, 3u, 4u, 5u));

// Probe RTT ordering: idle >> mid > connected.
class ProbeRttLevels : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ProbeRttLevels, IdleSlowerThanConnected) {
  const auto& config = wr::table7_profiles()[GetParam()].config;
  wild5g::Rng rng(3);
  auto mean_rtt = [&](double gap) {
    double sum = 0.0;
    for (int i = 0; i < 200; ++i) sum += wr::probe_rtt_ms(config, gap, rng);
    return sum / 200.0;
  };
  const double connected = mean_rtt(config.inactivity_timer_ms * 0.5);
  const double idle = mean_rtt(60000.0);
  EXPECT_GT(idle, connected + 50.0);
}

INSTANTIATE_TEST_SUITE_P(AllProfiles, ProbeRttLevels,
                         ::testing::Values(0u, 1u, 2u, 3u, 4u, 5u));

TEST(ProbeRtt, ContinuousReceptionIsFastest) {
  const auto& config = wr::profile_by_name("Verizon NSA mmWave").config;
  wild5g::Rng rng(4);
  // Within the continuous-rx window there is no DRX wait at all.
  for (int i = 0; i < 50; ++i) {
    EXPECT_LT(wr::probe_rtt_ms(config, 50.0, rng),
              config.base_rtt_ms + 20.0);
  }
}

TEST(Timeline, CoversHorizonWithoutGapsOrOverlap) {
  const auto& config = wr::profile_by_name("T-Mobile SA low-band").config;
  const std::vector<wr::ActivityBurst> bursts = {
      {1000.0, 3000.0, 100.0, 5.0}, {40000.0, 42000.0, 50.0, 2.0}};
  const auto timeline = wr::build_timeline(config, bursts, 90000.0);
  ASSERT_FALSE(timeline.empty());
  EXPECT_DOUBLE_EQ(timeline.front().start_ms, 0.0);
  for (std::size_t i = 1; i < timeline.size(); ++i) {
    EXPECT_DOUBLE_EQ(timeline[i].start_ms, timeline[i - 1].end_ms);
  }
  EXPECT_DOUBLE_EQ(timeline.back().end_ms, 90000.0);
}

TEST(Timeline, SaDecayChainConnectedInactiveIdle) {
  const auto& config = wr::profile_by_name("T-Mobile SA low-band").config;
  const std::vector<wr::ActivityBurst> bursts = {{0.0, 1000.0, 100.0, 5.0}};
  const auto timeline = wr::build_timeline(config, bursts, 60000.0);
  // Expect, after the burst: CONNECTED tail, then INACTIVE, then IDLE.
  std::vector<RrcState> states;
  for (const auto& seg : timeline) {
    if (!seg.transferring && !seg.promoting) states.push_back(seg.state);
  }
  ASSERT_GE(states.size(), 3u);
  EXPECT_EQ(states[states.size() - 3], RrcState::kConnected);
  EXPECT_EQ(states[states.size() - 2], RrcState::kInactive);
  EXPECT_EQ(states[states.size() - 1], RrcState::kIdle);
}

TEST(Timeline, NsaDecayChainUsesAnchor) {
  const auto& config = wr::profile_by_name("T-Mobile NSA low-band").config;
  const std::vector<wr::ActivityBurst> bursts = {{0.0, 1000.0, 100.0, 5.0}};
  const auto timeline = wr::build_timeline(config, bursts, 60000.0);
  bool saw_anchor = false;
  for (const auto& seg : timeline) {
    if (seg.state == RrcState::kConnectedAnchor) {
      saw_anchor = true;
      // Anchor window: [tail, anchor_tail] after the burst end.
      EXPECT_NEAR(seg.start_ms, 1000.0 + config.inactivity_timer_ms, 1e-6);
      EXPECT_NEAR(seg.end_ms, 1000.0 + *config.anchor_tail_ms, 1e-6);
    }
  }
  EXPECT_TRUE(saw_anchor);
}

TEST(Timeline, PromotionConsumesBurstHead) {
  const auto& config = wr::profile_by_name("Verizon NSA mmWave").config;
  const std::vector<wr::ActivityBurst> bursts = {{5000.0, 15000.0, 500.0, 10.0}};
  const auto timeline = wr::build_timeline(config, bursts, 30000.0);
  // Find the promoting segment: must start at the burst and last the 5G
  // promotion delay.
  bool found = false;
  for (const auto& seg : timeline) {
    if (seg.promoting) {
      found = true;
      EXPECT_DOUBLE_EQ(seg.start_ms, 5000.0);
      EXPECT_NEAR(seg.duration_ms(), *config.promotion_5g_ms, 1e-6);
    }
  }
  EXPECT_TRUE(found);
}

TEST(Timeline, BackToBackBurstsStayConnected) {
  const auto& config = wr::profile_by_name("Verizon 4G").config;
  const std::vector<wr::ActivityBurst> bursts = {
      {0.0, 1000.0, 50.0, 5.0}, {2000.0, 3000.0, 50.0, 5.0}};
  const auto timeline = wr::build_timeline(config, bursts, 10000.0);
  // Second burst arrives inside the tail: no promotion segment after t=0.
  for (const auto& seg : timeline) {
    if (seg.start_ms >= 1500.0 && seg.promoting) {
      FAIL() << "unexpected promotion at " << seg.start_ms;
    }
  }
}

TEST(Timeline, RejectsOverlappingBursts) {
  const auto& config = wr::profile_by_name("Verizon 4G").config;
  const std::vector<wr::ActivityBurst> bursts = {
      {0.0, 2000.0, 1.0, 1.0}, {1000.0, 3000.0, 1.0, 1.0}};
  EXPECT_THROW((void)wr::build_timeline(config, bursts, 10000.0),
               wild5g::Error);
}
