// Tests for the event-driven RRC machine, cross-validated against the
// closed-form model.
#include "rrc/live_machine.h"

#include <gtest/gtest.h>

#include "core/rng.h"
#include "rrc/state_machine.h"
#include "sim/simulator.h"

namespace wr = wild5g::rrc;
using wild5g::Rng;
using wild5g::sim::Simulator;

// Cross-validation: after any idle gap, the live machine's state equals the
// closed-form state_after_gap, for every Table-7 profile.
class LiveVsAnalytic : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LiveVsAnalytic, StateAgreesAfterAnyGap) {
  const auto& config = wr::table7_profiles()[GetParam()].config;
  Simulator sim;
  wr::LiveRrcMachine machine(config, sim);
  Rng rng(1);
  (void)machine.on_packet(rng);  // activity at t=0

  const double horizon =
      config.anchor_tail_ms.value_or(config.inactivity_timer_ms) +
      config.inactive_hold_ms.value_or(0.0) + 10000.0;
  for (double gap = 500.0; gap <= horizon; gap += 497.0) {
    Simulator fresh_sim;
    wr::LiveRrcMachine fresh(config, fresh_sim);
    Rng fresh_rng(2);
    (void)fresh.on_packet(fresh_rng);
    fresh_sim.run_until(gap);
    EXPECT_EQ(fresh.state(), wr::state_after_gap(config, gap))
        << config.name << " at gap " << gap;
  }
}

INSTANTIATE_TEST_SUITE_P(Table7, LiveVsAnalytic,
                         ::testing::Values(0u, 1u, 2u, 3u, 4u, 5u));

TEST(LiveMachine, TransitionsLoggedInOrder) {
  const auto& config = wr::profile_by_name("T-Mobile SA low-band").config;
  Simulator sim;
  wr::LiveRrcMachine machine(config, sim);
  Rng rng(3);
  (void)machine.on_packet(rng);
  sim.run_until(60000.0);

  const auto& transitions = machine.transitions();
  // IDLE->CONNECTED (packet), CONNECTED->INACTIVE (tail),
  // INACTIVE->IDLE (hold).
  ASSERT_EQ(transitions.size(), 3u);
  EXPECT_EQ(transitions[0].to, wr::RrcState::kConnected);
  EXPECT_EQ(transitions[1].to, wr::RrcState::kInactive);
  EXPECT_NEAR(transitions[1].at_ms, config.inactivity_timer_ms, 1e-6);
  EXPECT_EQ(transitions[2].to, wr::RrcState::kIdle);
  EXPECT_NEAR(transitions[2].at_ms,
              config.inactivity_timer_ms + *config.inactive_hold_ms, 1e-6);
}

TEST(LiveMachine, ActivityRestartsTail) {
  const auto& config = wr::profile_by_name("Verizon 4G").config;
  Simulator sim;
  wr::LiveRrcMachine machine(config, sim);
  Rng rng(4);
  (void)machine.on_packet(rng);
  sim.run_until(8000.0);
  (void)machine.on_packet(rng);  // inside the tail: timer restarts
  sim.run_until(8000.0 + config.inactivity_timer_ms - 100.0);
  EXPECT_EQ(machine.state(), wr::RrcState::kConnected);
  sim.run_until(8000.0 + config.inactivity_timer_ms + 100.0);
  EXPECT_EQ(machine.state(), wr::RrcState::kIdle);
}

TEST(LiveMachine, IdlePacketPaysPromotion) {
  const auto& config = wr::profile_by_name("Verizon NSA mmWave").config;
  Simulator sim;
  wr::LiveRrcMachine machine(config, sim);
  Rng rng(5);
  // First packet finds the UE in IDLE: RTT must include the 5G promotion.
  const double rtt = machine.on_packet(rng);
  EXPECT_GE(rtt, *config.promotion_5g_ms);
  EXPECT_EQ(machine.state(), wr::RrcState::kConnected);
}

TEST(ProbeDes, MatchesAnalyticProbeInference) {
  // The DES probe and the analytic probe must lead the (blind) inference to
  // the same timers.
  for (const std::size_t index : {0u, 2u, 4u}) {
    const auto& config = wr::table7_profiles()[index].config;
    const auto schedule = wr::schedule_for(config);
    Rng rng_a(6);
    Rng rng_b(6);
    const auto analytic =
        wr::infer_rrc_parameters(wr::run_probe(config, schedule, rng_a));
    const auto des = wr::infer_rrc_parameters(
        wr::run_probe_des(config, schedule, rng_b));
    EXPECT_NEAR(analytic.tail_timer_ms, des.tail_timer_ms,
                2.0 * schedule.step_ms)
        << config.name;
    EXPECT_NEAR(analytic.promotion_estimate_ms, des.promotion_estimate_ms,
                0.2 * std::max(100.0, analytic.promotion_estimate_ms))
        << config.name;
  }
}

TEST(ProbeDes, GroundTruthStatesMatchAnalytic) {
  const auto& config = wr::profile_by_name("T-Mobile NSA low-band").config;
  wr::ProbeSchedule schedule;
  schedule.repeats = 3;
  schedule.max_gap_ms = 20000.0;
  Rng rng(7);
  const auto samples = wr::run_probe_des(config, schedule, rng);
  for (const auto& sample : samples) {
    EXPECT_EQ(sample.true_state,
              wr::state_after_gap(config, sample.gap_ms))
        << "gap " << sample.gap_ms;
  }
}
