// Tests for the CUBIC/UDP fluid transport model (the Sec. 3.2 mechanisms).
#include "transport/tcp.h"

#include <gtest/gtest.h>

#include "core/error.h"
#include "core/rng.h"
#include "core/stats.h"

namespace wt = wild5g::transport;
using wild5g::Rng;

namespace {

wt::PathConfig clean_path(double rtt_ms, double capacity_mbps) {
  wt::PathConfig path;
  path.rtt_ms = rtt_ms;
  path.capacity_mbps = capacity_mbps;
  path.loss_event_rate_per_s = 0.0;
  return path;
}

}  // namespace

TEST(Udp, TracksCapacityMinusOverhead) {
  const auto path = clean_path(30.0, 2000.0);
  EXPECT_NEAR(wt::udp_throughput_mbps(path), 2000.0 * 0.985, 1e-9);
}

TEST(Tcp, WindowLimitedByDefaultWmem) {
  // Sec. 3.2 / Fig. 8: default tcp_wmem caps a single connection near
  // wmem/RTT regardless of link capacity.
  const auto path = clean_path(40.0, 2000.0);
  wt::TcpOptions options;  // default ~1.4 MB effective budget
  Rng rng(1);
  const auto result = wt::simulate_tcp(1, path, options, 20.0, rng);
  const double window_limit_mbps =
      options.wmem_bytes * 8.0 / 1e6 / (path.rtt_ms / 1000.0);
  EXPECT_LT(result.aggregate_goodput_mbps, window_limit_mbps * 1.02);
  EXPECT_GT(result.aggregate_goodput_mbps, window_limit_mbps * 0.75);
}

TEST(Tcp, TunedWmemUnlocksThroughput) {
  // Raising tcp_wmem gives the paper's 2.1-3x improvement.
  const auto path = clean_path(40.0, 2000.0);
  Rng rng_a(2);
  Rng rng_b(2);
  const auto tuned =
      wt::simulate_tcp(1, path, wt::tuned_tcp_options(), 20.0, rng_a);
  const auto dflt = wt::simulate_tcp(1, path, {}, 20.0, rng_b);
  EXPECT_GT(tuned.aggregate_goodput_mbps,
            2.0 * dflt.aggregate_goodput_mbps);
}

TEST(Tcp, LossLimitsSingleConnection) {
  auto path = clean_path(40.0, 2000.0);
  Rng rng_clean(3);
  const auto clean =
      wt::simulate_tcp(1, path, wt::tuned_tcp_options(), 30.0, rng_clean);
  path.loss_event_rate_per_s = 0.3;
  Rng rng_lossy(3);
  const auto lossy =
      wt::simulate_tcp(1, path, wt::tuned_tcp_options(), 30.0, rng_lossy);
  EXPECT_LT(lossy.aggregate_goodput_mbps,
            0.8 * clean.aggregate_goodput_mbps);
  EXPECT_GT(lossy.loss_events, clean.loss_events);
}

TEST(Tcp, SingleConnectionDegradesWithRtt) {
  // The Fig. 3/8 distance effect: same loss process, longer RTT, less
  // goodput (slower CUBIC recovery between loss events).
  auto run = [](double rtt_ms) {
    wt::PathConfig path;
    path.rtt_ms = rtt_ms;
    path.capacity_mbps = 2000.0;
    path.loss_event_rate_per_s = 0.02 + 0.0012 * rtt_ms;
    Rng rng(4);
    return wt::simulate_tcp(1, path, wt::tuned_tcp_options(), 30.0, rng)
        .aggregate_goodput_mbps;
  };
  const double near = run(10.0);
  const double mid = run(40.0);
  const double far = run(90.0);
  EXPECT_GT(near, mid);
  EXPECT_GT(mid, far);
}

TEST(Tcp, ManyConnectionsFillThePipe) {
  // Speedtest's 15-25 connections reach capacity regardless of distance.
  wt::PathConfig path;
  path.rtt_ms = 70.0;
  path.capacity_mbps = 3000.0;
  path.loss_event_rate_per_s = 0.1;
  Rng rng(5);
  const auto result =
      wt::simulate_tcp(20, path, wt::tuned_tcp_options(), 20.0, rng);
  EXPECT_GT(result.aggregate_goodput_mbps, 0.85 * path.capacity_mbps);
  EXPECT_LE(result.aggregate_goodput_mbps, path.capacity_mbps);
}

TEST(Tcp, AggregateNeverExceedsCapacity) {
  for (int conns : {1, 4, 16}) {
    wt::PathConfig path = clean_path(25.0, 500.0);
    Rng rng(6);
    const auto result =
        wt::simulate_tcp(conns, path, wt::tuned_tcp_options(), 15.0, rng);
    EXPECT_LE(result.aggregate_goodput_mbps, path.capacity_mbps);
  }
}

TEST(Tcp, PerConnectionSharesSumToAggregate) {
  wt::PathConfig path = clean_path(30.0, 1000.0);
  Rng rng(7);
  const auto result =
      wt::simulate_tcp(8, path, wt::tuned_tcp_options(), 15.0, rng);
  double sum = 0.0;
  for (double share : result.per_connection_mbps) sum += share;
  EXPECT_NEAR(sum, result.aggregate_goodput_mbps, 1e-6);
  EXPECT_EQ(result.per_connection_mbps.size(), 8u);
}

TEST(Tcp, UdpBeatsTcpOnSamePath) {
  wt::PathConfig path;
  path.rtt_ms = 50.0;
  path.capacity_mbps = 2000.0;
  path.loss_event_rate_per_s = 0.08;
  Rng rng(8);
  const auto tcp =
      wt::simulate_tcp(1, path, wt::tuned_tcp_options(), 20.0, rng);
  EXPECT_GT(wt::udp_throughput_mbps(path), tcp.aggregate_goodput_mbps);
}

TEST(Tcp, DeterministicInSeed) {
  wt::PathConfig path = clean_path(30.0, 800.0);
  path.loss_event_rate_per_s = 0.1;
  Rng a(9);
  Rng b(9);
  const auto ra = wt::simulate_tcp(3, path, {}, 15.0, a);
  const auto rb = wt::simulate_tcp(3, path, {}, 15.0, b);
  EXPECT_DOUBLE_EQ(ra.aggregate_goodput_mbps, rb.aggregate_goodput_mbps);
}

TEST(Tcp, RejectsInvalidArguments) {
  Rng rng(10);
  EXPECT_THROW((void)wt::simulate_tcp(0, clean_path(30.0, 100.0), {}, 10.0,
                                      rng),
               wild5g::Error);
  EXPECT_THROW(
      (void)wt::simulate_tcp(1, clean_path(-1.0, 100.0), {}, 10.0, rng),
      wild5g::Error);
  EXPECT_THROW(
      (void)wt::simulate_tcp(1, clean_path(30.0, 100.0), {}, 0.5, rng),
      wild5g::Error);
}

TEST(Tcp, PerPacketLossDrivesDistanceDecayAlone) {
  // With zero ambient events, per-packet loss alone produces the
  // RTT-dependent equilibrium (the Fig. 3 mechanism).
  auto run = [](double rtt_ms, double per_packet) {
    wt::PathConfig path;
    path.rtt_ms = rtt_ms;
    path.capacity_mbps = 2500.0;
    path.loss_event_rate_per_s = 0.0;
    path.loss_per_packet = per_packet;
    Rng rng(30);
    return wt::simulate_tcp(1, path, wt::tuned_tcp_options(), 20.0, rng)
        .aggregate_goodput_mbps;
  };
  EXPECT_GT(run(10.0, 2e-6), 1.4 * run(90.0, 2e-6));
  // And more loss means less throughput at fixed RTT.
  EXPECT_GT(run(60.0, 2e-7), run(60.0, 4e-6));
}

TEST(Tcp, HazardMakesShortTestsReproducible) {
  // The quasi-periodic loss hazard keeps run-to-run spread tight even in a
  // 15 s test (unlike a pure Poisson process at these event rates).
  wt::PathConfig path;
  path.rtt_ms = 80.0;
  path.capacity_mbps = 2000.0;
  path.loss_event_rate_per_s = 0.05;
  path.loss_per_packet = 3e-6;
  std::vector<double> runs;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed);
    runs.push_back(
        wt::simulate_tcp(1, path, wt::tuned_tcp_options(), 15.0, rng)
            .aggregate_goodput_mbps);
  }
  const double mean = wild5g::stats::mean(runs);
  EXPECT_LT(wild5g::stats::stddev(runs), 0.35 * mean);
}

TEST(Tcp, SlowStartRestartAfterTimeoutRecovers) {
  // A path with only rare deep losses must still average well above the
  // post-collapse floor (slow start to ssthresh does the heavy lifting).
  wt::PathConfig path;
  path.rtt_ms = 20.0;
  path.capacity_mbps = 1000.0;
  path.loss_event_rate_per_s = 0.2;
  path.loss_per_packet = 0.0;
  Rng rng(31);
  const auto result =
      wt::simulate_tcp(1, path, wt::tuned_tcp_options(), 20.0, rng);
  EXPECT_GT(result.aggregate_goodput_mbps, 0.4 * path.capacity_mbps);
}
