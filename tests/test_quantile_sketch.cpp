// Tests for the streaming quantile sketch and the SampleAccumulator facade.
//
// The two load-bearing contracts (DESIGN.md section 10):
//  - accuracy: quantile(p) is within the declared relative accuracy of the
//    exact order statistic at rank floor(p/100 * (n-1));
//  - determinism: sketch state is a pure function of the sample multiset,
//    so merge-of-shards equals single-stream byte-for-byte and results
//    cannot depend on parallel_map's thread count.
#include "core/quantile_sketch.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "core/error.h"
#include "core/parallel.h"
#include "core/rng.h"
#include "core/stats.h"

namespace ws = wild5g::stats;
using wild5g::Rng;

namespace {

/// Exact order statistic at the rank the sketch targets.
double exact_order_stat(std::vector<double> xs, double p) {
  std::sort(xs.begin(), xs.end());
  const double rank =
      (p / 100.0) * static_cast<double>(xs.size() - 1);
  return xs[static_cast<std::size_t>(rank)];
}

void expect_within_declared_accuracy(const std::vector<double>& xs,
                                     const char* label) {
  ws::QuantileSketch sketch;
  for (double x : xs) sketch.add(x);
  for (double p : {1.0, 5.0, 10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0}) {
    const double exact = exact_order_stat(xs, p);
    const double estimate = sketch.quantile(p);
    // Relative error bound; the tiny absolute floor covers magnitudes near
    // the sketch's smallest bucket.
    const double bound =
        sketch.relative_accuracy() * std::abs(exact) + 1e-9;
    EXPECT_NEAR(estimate, exact, bound)
        << label << " p" << p << " over n=" << xs.size();
  }
}

}  // namespace

TEST(QuantileSketch, WithinDeclaredBoundOnUniform) {
  Rng rng(11);
  std::vector<double> xs;
  for (int i = 0; i < 200000; ++i) xs.push_back(rng.uniform(0.5, 900.0));
  expect_within_declared_accuracy(xs, "uniform");
}

TEST(QuantileSketch, WithinDeclaredBoundOnLognormal) {
  Rng rng(12);
  std::vector<double> xs;
  for (int i = 0; i < 200000; ++i) xs.push_back(rng.lognormal(3.0, 1.5));
  expect_within_declared_accuracy(xs, "lognormal");
}

TEST(QuantileSketch, WithinDeclaredBoundOnAdversarialSorted) {
  // Already-sorted input (ascending, then a descending copy): order must
  // not matter, and geometric ramps stress many adjacent buckets.
  std::vector<double> xs;
  for (int i = 0; i < 100000; ++i) {
    xs.push_back(0.75 * std::pow(1.0001, i));
  }
  expect_within_declared_accuracy(xs, "sorted-ascending");
  std::reverse(xs.begin(), xs.end());
  expect_within_declared_accuracy(xs, "sorted-descending");
}

TEST(QuantileSketch, HandlesNegativeZeroAndMixedSigns) {
  std::vector<double> xs;
  Rng rng(13);
  for (int i = 0; i < 50000; ++i) {
    const double u = rng.uniform(-400.0, 400.0);
    xs.push_back(std::abs(u) < 2.0 ? 0.0 : u);
  }
  expect_within_declared_accuracy(xs, "mixed-signs");
}

TEST(QuantileSketch, MergeOfShardsIsByteIdenticalToSingleStream) {
  Rng rng(14);
  std::vector<double> xs;
  for (int i = 0; i < 120000; ++i) xs.push_back(rng.lognormal(2.0, 1.0));

  ws::QuantileSketch stream;
  for (double x : xs) stream.add(x);

  constexpr std::size_t kShards = 8;
  ws::QuantileSketch merged;
  for (std::size_t s = 0; s < kShards; ++s) {
    ws::QuantileSketch shard;
    for (std::size_t i = s; i < xs.size(); i += kShards) shard.add(xs[i]);
    merged.merge(shard);
  }

  EXPECT_EQ(merged.count(), stream.count());
  EXPECT_EQ(merged.min(), stream.min());
  EXPECT_EQ(merged.max(), stream.max());
  for (double p = 0.0; p <= 100.0; p += 0.5) {
    ASSERT_EQ(merged.quantile(p), stream.quantile(p)) << "p=" << p;
  }
}

TEST(QuantileSketch, ThreadCountInvariantThroughParallelMap) {
  // Shard the population with parallel_map (one sketch per task, merged in
  // index order on the caller's thread) and require byte-identical
  // quantiles at 1 and 8 threads — the campaign determinism contract.
  auto run = [](std::size_t threads) {
    wild5g::parallel::set_thread_count(threads);
    const auto shards = wild5g::parallel::parallel_map(
        16, [](std::size_t task) {
          Rng rng = Rng(15).fork(task);
          ws::QuantileSketch sketch;
          for (int i = 0; i < 20000; ++i) {
            sketch.add(rng.lognormal(2.5, 0.8));
          }
          return sketch;
        });
    ws::QuantileSketch merged;
    for (const auto& shard : shards) merged.merge(shard);
    wild5g::parallel::set_thread_count(0);
    return merged;
  };
  const auto serial = run(1);
  const auto threaded = run(8);
  EXPECT_EQ(serial.count(), threaded.count());
  for (double p : {5.0, 25.0, 50.0, 75.0, 95.0, 99.9}) {
    ASSERT_EQ(serial.quantile(p), threaded.quantile(p)) << "p=" << p;
  }
}

TEST(QuantileSketch, EmptyAndSingleSampleEdges) {
  ws::QuantileSketch sketch;
  EXPECT_TRUE(sketch.empty());
  // Mirrors stats::mean/percentile preconditions: empty is a caller bug.
  EXPECT_THROW((void)sketch.quantile(50.0), wild5g::Error);
  EXPECT_THROW((void)sketch.min(), wild5g::Error);
  EXPECT_THROW((void)sketch.max(), wild5g::Error);

  sketch.add(42.5);
  EXPECT_EQ(sketch.count(), 1u);
  for (double p : {0.0, 50.0, 100.0}) {
    EXPECT_EQ(sketch.quantile(p), 42.5) << "p=" << p;
  }
  EXPECT_THROW((void)sketch.quantile(-1.0), wild5g::Error);
  EXPECT_THROW((void)sketch.quantile(101.0), wild5g::Error);
}

TEST(QuantileSketch, RejectsNaNAtAccumulation) {
  ws::QuantileSketch sketch;
  EXPECT_THROW(sketch.add(std::numeric_limits<double>::quiet_NaN()),
               wild5g::Error);
  EXPECT_TRUE(sketch.empty()) << "rejected sample must not be counted";
}

TEST(QuantileSketch, MergeRejectsMismatchedAccuracy) {
  ws::QuantileSketch a(0.01);
  ws::QuantileSketch b(0.02);
  b.add(1.0);
  EXPECT_THROW(a.merge(b), wild5g::Error);
}

TEST(QuantileSketch, ExtremesStayExact) {
  ws::QuantileSketch sketch;
  sketch.add(0.123456789);
  sketch.add(987654.321);
  for (int i = 0; i < 1000; ++i) sketch.add(100.0 + i);
  EXPECT_EQ(sketch.min(), 0.123456789);
  EXPECT_EQ(sketch.max(), 987654.321);
  EXPECT_EQ(sketch.quantile(0.0), 0.123456789);
  EXPECT_EQ(sketch.quantile(100.0), 987654.321);
}

// ---------------------------------------------------------------------------
// SampleAccumulator facade

TEST(SampleAccumulator, ExactModeMatchesStatsPercentileBitForBit) {
  Rng rng(16);
  std::vector<double> xs;
  ws::SampleAccumulator acc;
  for (int i = 0; i < 5000; ++i) {  // below kDefaultExactLimit
    const double x = rng.lognormal(2.0, 1.2);
    xs.push_back(x);
    acc.add(x);
  }
  ASSERT_TRUE(acc.exact());
  for (double p : {5.0, 10.0, 50.0, 90.0, 95.0, 99.0}) {
    ASSERT_EQ(acc.percentile(p), wild5g::stats::percentile(xs, p))
        << "p=" << p;
  }
  EXPECT_EQ(acc.median(), wild5g::stats::median(xs));
  EXPECT_EQ(acc.p95(), wild5g::stats::p95(xs));
  EXPECT_EQ(acc.mean(), wild5g::stats::mean(xs));
  EXPECT_EQ(acc.min(), *std::min_element(xs.begin(), xs.end()));
  EXPECT_EQ(acc.max(), *std::max_element(xs.begin(), xs.end()));
}

TEST(SampleAccumulator, SpillsToSketchPastExactLimitAndStaysAccurate) {
  Rng rng(17);
  std::vector<double> xs;
  ws::SampleAccumulator acc;
  for (int i = 0; i < 50000; ++i) {
    const double x = rng.lognormal(2.0, 1.0);
    xs.push_back(x);
    acc.add(x);
  }
  EXPECT_FALSE(acc.exact());
  EXPECT_EQ(acc.count(), 50000u);
  for (double p : {10.0, 50.0, 90.0, 99.0}) {
    const double exact = exact_order_stat(xs, p);
    EXPECT_NEAR(acc.percentile(p), exact,
                ws::QuantileSketch::kDefaultRelativeAccuracy * exact + 1e-9)
        << "p=" << p;
  }
  // The running mean stays exact (same left-to-right accumulation order as
  // stats::mean over the stream).
  EXPECT_DOUBLE_EQ(acc.mean(), wild5g::stats::mean(xs));
}

TEST(SampleAccumulator, ModeSwitchDependsOnlyOnTotalCount) {
  // merge() must yield the same answers as one stream over the same
  // multiset, including when the merge itself triggers the spill.
  Rng rng(18);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) xs.push_back(rng.lognormal(1.5, 0.9));

  ws::SampleAccumulator stream;
  for (double x : xs) stream.add(x);

  ws::SampleAccumulator merged;
  constexpr std::size_t kShards = 4;
  for (std::size_t s = 0; s < kShards; ++s) {
    ws::SampleAccumulator shard;
    for (std::size_t i = s; i < xs.size(); i += kShards) shard.add(xs[i]);
    ASSERT_TRUE(shard.exact()) << "each shard stays below the exact limit";
    merged.merge(shard);
  }
  EXPECT_FALSE(merged.exact());
  EXPECT_EQ(merged.count(), stream.count());
  for (double p : {5.0, 50.0, 95.0, 99.5}) {
    ASSERT_EQ(merged.percentile(p), stream.percentile(p)) << "p=" << p;
  }
  EXPECT_EQ(merged.min(), stream.min());
  EXPECT_EQ(merged.max(), stream.max());
}

TEST(SampleAccumulator, SmallMergesStayExact) {
  ws::SampleAccumulator a;
  ws::SampleAccumulator b;
  std::vector<double> xs;
  for (int i = 0; i < 100; ++i) {
    a.add(static_cast<double>(i));
    xs.push_back(static_cast<double>(i));
  }
  for (int i = 100; i < 200; ++i) {
    b.add(static_cast<double>(i));
    xs.push_back(static_cast<double>(i));
  }
  a.merge(b);
  EXPECT_TRUE(a.exact());
  EXPECT_EQ(a.percentile(90.0), wild5g::stats::percentile(xs, 90.0));
}

TEST(SampleAccumulator, EmptyAndPreconditionEdges) {
  ws::SampleAccumulator acc;
  EXPECT_TRUE(acc.empty());
  EXPECT_THROW((void)acc.percentile(50.0), wild5g::Error);
  EXPECT_THROW((void)acc.mean(), wild5g::Error);
  EXPECT_THROW((void)acc.min(), wild5g::Error);
  EXPECT_THROW((void)acc.max(), wild5g::Error);
  acc.add(7.0);
  EXPECT_EQ(acc.percentile(50.0), 7.0);
  EXPECT_EQ(acc.mean(), 7.0);
}

TEST(SampleAccumulator, RejectsNaNAtAccumulation) {
  ws::SampleAccumulator acc;
  acc.add(1.0);
  EXPECT_THROW(acc.add(std::numeric_limits<double>::quiet_NaN()),
               wild5g::Error);
  EXPECT_EQ(acc.count(), 1u);
}

TEST(SampleAccumulator, TenMillionSamplesFitFixedMemoryBudget) {
  // The whole point: percentile memory is O(sketch), not O(samples).
  // 10M doubles would be 80 MB as a vector; the accumulator must hold the
  // population in a fixed budget that does not scale with n.
  constexpr std::size_t kBudgetBytes = 256 * 1024;
  ws::SampleAccumulator acc;
  Rng rng(19);
  for (int i = 0; i < 10'000'000; ++i) {
    acc.add(rng.lognormal(3.0, 1.3));
  }
  EXPECT_EQ(acc.count(), 10'000'000u);
  EXPECT_LE(acc.memory_bytes(), kBudgetBytes);
  // And it still answers sensibly: lognormal(3, 1.3) median is e^3.
  EXPECT_NEAR(acc.median(), std::exp(3.0), 0.05 * std::exp(3.0));
}

// Regression: stats::percentile used to silently accept NaN, which poisons
// std::sort's ordering and returns an arbitrary but plausible value.
TEST(StatsPercentile, RejectsNaNSamples) {
  const std::vector<double> xs = {1.0, 2.0,
                                  std::numeric_limits<double>::quiet_NaN(),
                                  4.0};
  EXPECT_THROW((void)wild5g::stats::percentile(xs, 50.0), wild5g::Error);
  EXPECT_THROW((void)wild5g::stats::median(xs), wild5g::Error);
}

// --- merge edge-case pins (empty <-> non-empty, boundary counts, self) ---

TEST(SampleAccumulator, EmptyIntoNonEmptyPreservesExactExtremes) {
  // Exact mode and sketch mode both: folding an empty shard in must not
  // disturb min/max/count/percentiles by a single bit. Metro campaigns
  // merge shards whose UEs may all have been inactive, so empty-shard
  // merges are the common case, not the corner.
  for (const int samples : {5, 10000}) {  // below and above the exact limit
    wild5g::stats::SampleAccumulator acc;
    wild5g::Rng rng(31);
    for (int i = 0; i < samples; ++i) acc.add(rng.lognormal(2.0, 1.0));
    const auto count_before = acc.count();
    const double min_before = acc.min();
    const double max_before = acc.max();
    const double p50_before = acc.median();
    const wild5g::stats::SampleAccumulator empty;
    acc.merge(empty);
    EXPECT_EQ(acc.count(), count_before);
    EXPECT_EQ(acc.min(), min_before);
    EXPECT_EQ(acc.max(), max_before);
    EXPECT_EQ(acc.median(), p50_before);
  }
}

TEST(SampleAccumulator, NonEmptyIntoEmptyAdoptsExactState) {
  for (const int samples : {5, 10000}) {
    wild5g::stats::SampleAccumulator donor;
    wild5g::Rng rng(32);
    for (int i = 0; i < samples; ++i) donor.add(rng.uniform(-50.0, 200.0));
    wild5g::stats::SampleAccumulator acc;
    acc.merge(donor);
    EXPECT_EQ(acc.count(), donor.count());
    EXPECT_EQ(acc.min(), donor.min());
    EXPECT_EQ(acc.max(), donor.max());
    EXPECT_EQ(acc.mean(), donor.mean());
    EXPECT_EQ(acc.percentile(95.0), donor.percentile(95.0));
    EXPECT_EQ(acc.exact(), donor.exact());
  }
}

TEST(SampleAccumulator, MergeExactlyAtTheExactLimitStaysExact) {
  // a.count + b.count == exact_limit must stay in exact mode; one more
  // sample anywhere spills. The boundary is inclusive.
  const std::size_t limit = 16;
  wild5g::stats::SampleAccumulator a(limit);
  wild5g::stats::SampleAccumulator b(limit);
  for (int i = 0; i < 8; ++i) {
    a.add(static_cast<double>(i));
    b.add(static_cast<double>(100 + i));
  }
  a.merge(b);
  EXPECT_EQ(a.count(), limit);
  EXPECT_TRUE(a.exact());
  wild5g::stats::SampleAccumulator c(limit);
  c.add(1000.0);
  a.merge(c);
  EXPECT_EQ(a.count(), limit + 1);
  EXPECT_FALSE(a.exact());
  EXPECT_EQ(a.min(), 0.0);      // extremes stay exact across the spill
  EXPECT_EQ(a.max(), 1000.0);
}

TEST(SampleAccumulator, SelfMergeIsRejected) {
  // Exact mode would insert the vector into itself (UB on reallocation);
  // sketch mode would silently double every bucket. Both must throw.
  wild5g::stats::SampleAccumulator exact_mode;
  for (int i = 0; i < 100; ++i) exact_mode.add(static_cast<double>(i));
  EXPECT_THROW(exact_mode.merge(exact_mode), wild5g::Error);
  EXPECT_EQ(exact_mode.count(), 100u) << "failed merge must not mutate";

  wild5g::stats::SampleAccumulator sketch_mode(8);
  for (int i = 0; i < 100; ++i) sketch_mode.add(static_cast<double>(i));
  ASSERT_FALSE(sketch_mode.exact());
  EXPECT_THROW(sketch_mode.merge(sketch_mode), wild5g::Error);
  EXPECT_EQ(sketch_mode.count(), 100u);
}

TEST(QuantileSketch, EmptyMergesPreserveStateBothWays) {
  wild5g::stats::QuantileSketch populated;
  wild5g::Rng rng(33);
  for (int i = 0; i < 5000; ++i) populated.add(rng.normal(10.0, 4.0));
  const double min_before = populated.min();
  const double max_before = populated.max();
  const double p50_before = populated.quantile(50.0);

  wild5g::stats::QuantileSketch empty;
  populated.merge(empty);  // empty into non-empty: no-op
  EXPECT_EQ(populated.count(), 5000u);
  EXPECT_EQ(populated.min(), min_before);
  EXPECT_EQ(populated.max(), max_before);
  EXPECT_EQ(populated.quantile(50.0), p50_before);

  empty.merge(populated);  // non-empty into empty: adopt
  EXPECT_EQ(empty.count(), 5000u);
  EXPECT_EQ(empty.min(), min_before);
  EXPECT_EQ(empty.max(), max_before);
  EXPECT_EQ(empty.quantile(50.0), p50_before);

  wild5g::stats::QuantileSketch a;
  wild5g::stats::QuantileSketch b;
  a.merge(b);  // empty into empty: still empty
  EXPECT_TRUE(a.empty());
}

TEST(QuantileSketch, SelfMergeIsRejected) {
  wild5g::stats::QuantileSketch sketch;
  for (int i = 0; i < 100; ++i) sketch.add(static_cast<double>(i));
  EXPECT_THROW(sketch.merge(sketch), wild5g::Error);
  EXPECT_EQ(sketch.count(), 100u) << "failed merge must not mutate";
}

TEST(SampleAccumulator, MergeOrderWithEmptyShardsIsIrrelevant) {
  // Index-ordered shard merges where some shards are empty: any placement
  // of the empty shards yields byte-identical state. Pins the metro
  // campaign's merge loop against order sensitivity sneaking in.
  const auto build = [](const std::vector<int>& shard_sizes) {
    wild5g::stats::SampleAccumulator total(64);
    int offset = 0;
    for (const int size : shard_sizes) {
      wild5g::stats::SampleAccumulator shard(64);
      for (int i = 0; i < size; ++i) {
        shard.add(static_cast<double>(offset + i) * 1.5);
      }
      offset += size;
      total.merge(shard);
    }
    return total;
  };
  const auto a = build({0, 40, 0, 0, 60, 0});  // spills mid-sequence
  const auto b = build({40, 60, 0, 0, 0, 0});
  ASSERT_EQ(a.count(), b.count());
  EXPECT_EQ(a.min(), b.min());
  EXPECT_EQ(a.max(), b.max());
  EXPECT_EQ(a.mean(), b.mean());
  for (const double p : {5.0, 50.0, 95.0, 100.0}) {
    EXPECT_EQ(a.percentile(p), b.percentile(p));
  }
}
