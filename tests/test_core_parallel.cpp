// Unit tests for the deterministic parallel campaign runner
// (src/core/parallel.h): index-ordered collection, bit-identical results
// across thread counts, exception propagation, nested-region degradation.
// These are the tests the ThreadSanitizer CI job runs.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <numeric>
#include <vector>

#include "core/error.h"
#include "core/parallel.h"
#include "core/rng.h"

namespace wp = wild5g::parallel;
using wild5g::Rng;

namespace {

/// Runs `body` with the pool pinned at `threads`, restoring auto after.
template <typename Body>
void with_threads(std::size_t threads, Body&& body) {
  wp::set_thread_count(threads);
  body();
  wp::set_thread_count(0);
}

std::vector<double> campaign_draws(std::size_t tasks) {
  Rng rng(20210823);
  Rng base = rng.split();
  return wp::parallel_map(tasks, [&](std::size_t i) {
    Rng task_rng = base.fork(i);
    double acc = 0.0;
    for (int draw = 0; draw < 100; ++draw) acc += task_rng.uniform(0.0, 1.0);
    return acc;
  });
}

}  // namespace

TEST(Parallel, ThreadCountIsAtLeastOne) {
  EXPECT_GE(wp::thread_count(), 1u);
  EXPECT_GE(wp::hardware_thread_count(), 1u);
}

TEST(Parallel, SetThreadCountOverridesAndResets) {
  wp::set_thread_count(3);
  EXPECT_EQ(wp::thread_count(), 3u);
  wp::set_thread_count(0);
  EXPECT_GE(wp::thread_count(), 1u);
}

TEST(Parallel, MapReturnsIndexOrderedResults) {
  with_threads(8, [] {
    const auto out =
        wp::parallel_map(100, [](std::size_t i) { return 3 * i + 1; });
    ASSERT_EQ(out.size(), 100u);
    for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], 3 * i + 1);
  });
}

TEST(Parallel, ForRunsEveryIndexExactlyOnce) {
  with_threads(8, [] {
    std::vector<std::atomic<int>> hits(257);
    wp::parallel_for(hits.size(), [&](std::size_t i) { hits[i]++; });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  });
}

TEST(Parallel, ZeroTasksIsANoOp) {
  with_threads(8, [] {
    wp::parallel_for(0, [](std::size_t) { FAIL() << "body ran"; });
    const auto out = wp::parallel_map(0, [](std::size_t i) { return i; });
    EXPECT_TRUE(out.empty());
  });
}

TEST(Parallel, BitIdenticalAcrossThreadCounts) {
  // The determinism contract: per-index forked substreams + index-ordered
  // collection make the output a pure function of (seed, index), so any
  // thread count yields the same bits.
  std::vector<double> serial;
  with_threads(1, [&] { serial = campaign_draws(64); });
  for (const std::size_t threads : {2u, 5u, 8u}) {
    std::vector<double> parallel_out;
    with_threads(threads, [&] { parallel_out = campaign_draws(64); });
    ASSERT_EQ(serial.size(), parallel_out.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(serial[i], parallel_out[i])  // wild5g-lint: allow(float-equality) the contract is bit-identity, not closeness
          << "task " << i << " diverged at " << threads << " threads";
    }
  }
}

TEST(Parallel, OrderedReductionMatchesSerialSum) {
  // Reducing the index-ordered result on the caller's thread must give the
  // serial loop's sum exactly (FP addition in the same order).
  double serial_sum = 0.0;
  with_threads(1, [&] {
    for (const double x : campaign_draws(64)) serial_sum += x;
  });
  double parallel_sum = 0.0;
  with_threads(8, [&] {
    for (const double x : campaign_draws(64)) parallel_sum += x;
  });
  EXPECT_EQ(serial_sum, parallel_sum);  // wild5g-lint: allow(float-equality) bit-identity contract across thread counts
}

TEST(Parallel, LowestIndexExceptionWins) {
  with_threads(8, [] {
    try {
      wp::parallel_for(64, [](std::size_t i) {
        if (i % 3 == 0) {
          throw wild5g::Error("task " + std::to_string(i) + " failed");
        }
      });
      FAIL() << "no exception propagated";
    } catch (const wild5g::Error& e) {
      // Every failing task ran, but the surfaced error must not depend on
      // scheduling: the lowest failing index is rethrown.
      EXPECT_STREQ(e.what(), "task 0 failed");
    }
  });
}

TEST(Parallel, AllTasksRunDespiteEarlyFailure) {
  with_threads(4, [] {
    std::vector<std::atomic<int>> hits(32);
    EXPECT_THROW(wp::parallel_for(hits.size(),
                                  [&](std::size_t i) {
                                    hits[i]++;
                                    if (i == 0) {
                                      throw wild5g::Error("first task");
                                    }
                                  }),
                 wild5g::Error);
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  });
}

TEST(Parallel, NestedRegionsRunInlineAndStayDeterministic) {
  auto nested_campaign = [] {
    Rng rng(7);
    Rng base = rng.split();
    return wp::parallel_map(8, [&](std::size_t outer) {
      Rng outer_rng = base.fork(outer);
      Rng inner_base = outer_rng.split();
      const auto inner = wp::parallel_map(4, [&](std::size_t j) {
        Rng inner_rng = inner_base.fork(j);
        return inner_rng.uniform(0.0, 1.0);
      });
      return std::accumulate(inner.begin(), inner.end(), 0.0);
    });
  };
  std::vector<double> serial;
  with_threads(1, [&] { serial = nested_campaign(); });
  std::vector<double> threaded;
  with_threads(8, [&] { threaded = nested_campaign(); });
  ASSERT_EQ(serial.size(), threaded.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], threaded[i]);  // wild5g-lint: allow(float-equality) bit-identity contract across thread counts
  }
}

TEST(Parallel, ReusableAcrossManyBatches) {
  // The shared pool must survive many batch cycles (every campaign loop in
  // a bench is one batch) without leaking or wedging.
  with_threads(4, [] {
    for (int round = 0; round < 50; ++round) {
      const auto out = wp::parallel_map(
          17, [round](std::size_t i) { return round * 100 + static_cast<int>(i); });
      for (std::size_t i = 0; i < out.size(); ++i) {
        ASSERT_EQ(out[i], round * 100 + static_cast<int>(i));
      }
    }
  });
}

TEST(Parallel, SplitAdvancesParentStream) {
  // split() must derive distinct substream families on successive calls —
  // that is what keeps two campaigns on one Rng from replaying each other's
  // draws (fork() alone is position-independent by design).
  Rng rng(99);
  Rng first = rng.split();
  Rng second = rng.split();
  EXPECT_NE(first.uniform(0.0, 1.0), second.uniform(0.0, 1.0));

  Rng a(99);
  Rng b(99);
  EXPECT_EQ(a.split().uniform(0.0, 1.0),  // wild5g-lint: allow(float-equality) determinism: same seed, same split draw
            b.split().uniform(0.0, 1.0));
}
