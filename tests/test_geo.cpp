// Tests for geographic primitives and location catalogs.
#include "geo/geo.h"

#include <gtest/gtest.h>

namespace wg = wild5g::geo;

TEST(Geo, HaversineZeroForSamePoint) {
  const wg::GeoPoint p{44.98, -93.27};
  EXPECT_NEAR(wg::haversine_km(p, p), 0.0, 1e-9);
}

TEST(Geo, HaversineSymmetric) {
  const wg::GeoPoint a{44.98, -93.27};
  const wg::GeoPoint b{41.88, -87.63};
  EXPECT_DOUBLE_EQ(wg::haversine_km(a, b), wg::haversine_km(b, a));
}

TEST(Geo, MinneapolisToChicagoKnownDistance) {
  const double d = wg::haversine_km(wg::minneapolis().point,
                                    {41.8781, -87.6298});
  EXPECT_NEAR(d, 570.0, 25.0);  // ~570 km great-circle
}

TEST(Geo, MinneapolisToAnnArbor) {
  const double d =
      wg::haversine_km(wg::minneapolis().point, wg::ann_arbor().point);
  EXPECT_NEAR(d, 790.0, 60.0);
}

TEST(Geo, MetroCatalogNonEmptyAndDistinct) {
  const auto cities = wg::metro_cities();
  ASSERT_GE(cities.size(), 20u);
  // Minneapolis must be in the pool (carrier hosts a server in the UE city).
  bool has_msp = false;
  for (const auto& c : cities) {
    if (c.name.find("Minneapolis") != std::string::npos) has_msp = true;
  }
  EXPECT_TRUE(has_msp);
}

TEST(Geo, AzureRegionsOrderedByQuotedDistance) {
  const auto regions = wg::azure_regions();
  ASSERT_EQ(regions.size(), 8u);
  for (std::size_t i = 1; i < regions.size(); ++i) {
    EXPECT_LT(regions[i - 1].quoted_distance_km,
              regions[i].quoted_distance_km);
  }
  EXPECT_NEAR(regions.front().quoted_distance_km, 374.0, 1e-9);
  EXPECT_NEAR(regions.back().quoted_distance_km, 2532.0, 1e-9);
}

TEST(Geo, AzureQuotedDistancesAgreeWithCoordinates) {
  // The paper's annotations are network-path distances, which can exceed the
  // geodesic substantially (e.g. West Central: 1444 km quoted vs ~1030 km
  // great-circle to Cheyenne). Sanity: same order, geodesic <= quoted + 20%.
  const auto ue = wg::minneapolis().point;
  for (const auto& region : wg::azure_regions()) {
    const double actual = wg::haversine_km(ue, region.point);
    EXPECT_GT(actual, 0.4 * region.quoted_distance_km) << region.name;
    EXPECT_LT(actual, 1.2 * region.quoted_distance_km) << region.name;
  }
}

TEST(Geo, HaversineAntipodalBounded) {
  const wg::GeoPoint a{0.0, 0.0};
  const wg::GeoPoint b{0.0, 180.0};
  EXPECT_NEAR(wg::haversine_km(a, b), 20015.0, 10.0);  // half circumference
}
