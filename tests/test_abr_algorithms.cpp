// Tests for the seven ABR algorithms' decision logic.
#include "abr/algorithms.h"

#include <gtest/gtest.h>

#include "abr/video.h"
#include "core/error.h"

namespace wa = wild5g::abr;

namespace {

struct ContextBuilder {
  wa::VideoProfile video = wa::video_ladder_5g();
  std::vector<double> past;
  wa::AbrContext context;

  wa::AbrContext& build(double buffer_s, int last_track,
                        std::vector<double> history) {
    past = std::move(history);
    context = {};
    context.video = &video;
    context.next_chunk = static_cast<int>(past.size());
    context.chunk_count = 60;
    context.buffer_s = buffer_s;
    context.max_buffer_s = 30.0;
    context.last_track = last_track;
    context.past_chunk_mbps = past;
    return context;
  }
};

}  // namespace

TEST(RateBased, PicksHighestSustainableTrack) {
  ContextBuilder cb;
  wa::RateBasedAbr rb;
  // Throughput ~ 120 Mbps: highest track <= 120 is 106.7 (index 4).
  EXPECT_EQ(rb.choose_track(cb.build(10.0, 3, {120.0, 120.0, 120.0})), 4);
  // Plenty of bandwidth: top track.
  EXPECT_EQ(rb.choose_track(cb.build(10.0, 3, {500.0, 500.0, 500.0})), 5);
  // Starved: lowest track.
  EXPECT_EQ(rb.choose_track(cb.build(10.0, 3, {5.0, 5.0, 5.0})), 0);
}

TEST(RateBased, NoHistoryIsConservative) {
  ContextBuilder cb;
  wa::RateBasedAbr rb;
  EXPECT_EQ(rb.choose_track(cb.build(0.0, -1, {})), 0);
}

TEST(Bba, MonotoneInBuffer) {
  ContextBuilder cb;
  wa::BbaAbr bba;
  int prev = -1;
  for (double buffer = 0.0; buffer <= 30.0; buffer += 1.0) {
    const int track = bba.choose_track(cb.build(buffer, 2, {100.0}));
    EXPECT_GE(track, prev);
    prev = track;
  }
  EXPECT_EQ(bba.choose_track(cb.build(1.0, 2, {100.0})), 0);
  EXPECT_EQ(bba.choose_track(cb.build(29.0, 2, {100.0})), 5);
}

TEST(Bola, LowBufferLowTrackHighBufferHighTrack) {
  ContextBuilder cb;
  wa::BolaAbr bola;
  EXPECT_EQ(bola.choose_track(cb.build(1.0, 2, {100.0})), 0);
  EXPECT_EQ(bola.choose_track(cb.build(29.0, 2, {100.0})), 5);
  // Monotone non-decreasing in buffer.
  int prev = -1;
  for (double buffer = 0.0; buffer <= 30.0; buffer += 0.5) {
    const int track = bola.choose_track(cb.build(buffer, 2, {100.0}));
    EXPECT_GE(track, prev);
    prev = track;
  }
}

TEST(Festive, MovesAtMostOneLevelPerChunk) {
  ContextBuilder cb;
  wa::FestiveAbr festive;
  festive.reset();
  // Huge estimated bandwidth but last track 1: may only step to 2.
  EXPECT_EQ(festive.choose_track(cb.build(20.0, 1, {900.0, 900.0, 900.0})),
            2);
  // Collapse: may only step down one level from 4.
  festive.reset();
  EXPECT_EQ(festive.choose_track(cb.build(20.0, 4, {1.0, 1.0, 1.0})), 3);
}

TEST(Festive, StabilityBrakeHolds) {
  ContextBuilder cb;
  wa::FestiveAbr festive;
  festive.reset();
  // Force alternating estimates to trigger switches, then verify the brake.
  int switches = 0;
  int last = 2;
  for (int i = 0; i < 12; ++i) {
    const double est = (i % 2 == 0) ? 900.0 : 30.0;
    const int track =
        festive.choose_track(cb.build(20.0, last, {est, est, est}));
    if (track != last) ++switches;
    last = track;
  }
  EXPECT_LE(switches, 7);  // brake engaged at least sometimes
}

TEST(Mpc, TopTrackWhenPredictionHuge) {
  ContextBuilder cb;
  wa::HarmonicMeanPredictor predictor;
  wa::ModelPredictiveAbr mpc(wa::ModelPredictiveAbr::Variant::kFast,
                             predictor);
  mpc.reset();
  EXPECT_EQ(mpc.choose_track(
                cb.build(20.0, 5, {2000.0, 2000.0, 2000.0, 2000.0, 2000.0})),
            5);
}

TEST(Mpc, LowTrackWhenStarvedAndBufferEmpty) {
  ContextBuilder cb;
  wa::HarmonicMeanPredictor predictor;
  wa::ModelPredictiveAbr mpc(wa::ModelPredictiveAbr::Variant::kFast,
                             predictor);
  mpc.reset();
  EXPECT_EQ(mpc.choose_track(cb.build(0.5, 0, {8.0, 8.0, 8.0})), 0);
}

TEST(Mpc, RobustMoreConservativeAfterPredictionError) {
  ContextBuilder cb;
  wa::HarmonicMeanPredictor p1;
  wa::HarmonicMeanPredictor p2;
  wa::ModelPredictiveAbr fast(wa::ModelPredictiveAbr::Variant::kFast, p1);
  wa::ModelPredictiveAbr robust(wa::ModelPredictiveAbr::Variant::kRobust, p2);
  fast.reset();
  robust.reset();

  // First decision identical (no error history yet). Feed a wildly wrong
  // history: previous prediction 240 (hm of history), actual turned out 40.
  (void)fast.choose_track(cb.build(10.0, 3, {240.0, 240.0, 240.0}));
  (void)robust.choose_track(cb.build(10.0, 3, {240.0, 240.0, 240.0}));
  const auto& ctx_fast =
      cb.build(6.0, 3, {240.0, 240.0, 240.0, 40.0});
  const int fast_track = fast.choose_track(ctx_fast);
  const auto& ctx_robust =
      cb.build(6.0, 3, {240.0, 240.0, 240.0, 40.0});
  const int robust_track = robust.choose_track(ctx_robust);
  EXPECT_LE(robust_track, fast_track);
}

TEST(Mpc, HorizonValidation) {
  wa::HarmonicMeanPredictor predictor;
  EXPECT_THROW(wa::ModelPredictiveAbr(
                   wa::ModelPredictiveAbr::Variant::kFast, predictor, 0),
               wild5g::Error);
  EXPECT_THROW(wa::ModelPredictiveAbr(
                   wa::ModelPredictiveAbr::Variant::kFast, predictor, 99),
               wild5g::Error);
}

TEST(Mpc, NamesDistinguishVariants) {
  wa::HarmonicMeanPredictor predictor;
  wa::ModelPredictiveAbr fast(wa::ModelPredictiveAbr::Variant::kFast,
                              predictor);
  wa::ModelPredictiveAbr robust(wa::ModelPredictiveAbr::Variant::kRobust,
                                predictor);
  EXPECT_EQ(fast.name(), "fastMPC");
  EXPECT_EQ(robust.name(), "robustMPC");
}

TEST(AllAlgorithms, AlwaysReturnValidTracks) {
  ContextBuilder cb;
  wa::HarmonicMeanPredictor predictor;
  wa::RateBasedAbr rb;
  wa::BbaAbr bba;
  wa::BolaAbr bola;
  wa::FestiveAbr festive;
  wa::ModelPredictiveAbr fast(wa::ModelPredictiveAbr::Variant::kFast,
                              predictor);
  std::vector<wa::AbrAlgorithm*> algorithms{&rb, &bba, &bola, &festive,
                                            &fast};
  wild5g::Rng rng(1);
  for (auto* algorithm : algorithms) {
    algorithm->reset();
    for (int i = 0; i < 50; ++i) {
      const double buffer = rng.uniform(0.0, 30.0);
      const int last = static_cast<int>(rng.uniform_int(0, 5));
      std::vector<double> history;
      for (int j = 0; j < 5; ++j) history.push_back(rng.uniform(0.1, 2000.0));
      const int track =
          algorithm->choose_track(cb.build(buffer, last, history));
      EXPECT_GE(track, 0) << algorithm->name();
      EXPECT_LT(track, 6) << algorithm->name();
    }
  }
}
