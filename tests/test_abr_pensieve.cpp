// Tests for the distilled learning-based ABR (the Pensieve stand-in).
#include "abr/pensieve_like.h"

#include <gtest/gtest.h>

#include "abr/algorithms.h"
#include "abr/video.h"
#include "core/error.h"

namespace wa = wild5g::abr;
namespace wt = wild5g::traces;
using wild5g::Rng;

namespace {

struct Fixture {
  std::vector<wt::Trace> traces_4g;
  std::vector<wt::Trace> traces_5g;
  wa::SessionOptions options;

  Fixture() {
    Rng rng(1);
    auto c4 = wt::lumos5g_lte_config();
    c4.count = 40;
    traces_4g = wt::generate_traces(c4, rng);
    Rng rng2(2);
    auto c5 = wt::lumos5g_mmwave_config();
    c5.count = 30;
    traces_5g = wt::generate_traces(c5, rng2);
    options.chunk_count = 40;
  }
};

}  // namespace

TEST(Pensieve, UntrainedThrows) {
  wa::PensieveLikeAbr pensieve;
  wa::AbrContext context;
  const auto video = wa::video_ladder_4g();
  context.video = &video;
  EXPECT_THROW((void)pensieve.choose_track(context), wild5g::Error);
}

TEST(Pensieve, TrainsOnFourGTraces) {
  Fixture f;
  wa::PensieveLikeAbr pensieve;
  Rng rng(3);
  pensieve.train(wa::video_ladder_4g(), f.traces_4g, f.options, rng);
  EXPECT_TRUE(pensieve.is_trained());
}

TEST(Pensieve, StrongOnItsTrainingDistribution) {
  // The paper: Pensieve outperforms on 4G (its training regime).
  Fixture f;
  wa::PensieveLikeAbr pensieve;
  Rng rng(4);
  pensieve.train(wa::video_ladder_4g(), f.traces_4g, f.options, rng);

  const auto video = wa::video_ladder_4g();
  const auto qoe_pensieve =
      wa::evaluate_on_traces(video, f.traces_4g, pensieve, f.options);
  wa::RateBasedAbr rb;
  const auto qoe_rb = wa::evaluate_on_traces(video, f.traces_4g, rb,
                                             f.options);
  EXPECT_GT(qoe_pensieve.mean_normalized_qoe, qoe_rb.mean_normalized_qoe);
  EXPECT_GT(qoe_pensieve.mean_normalized_bitrate, 0.6);
}

TEST(Pensieve, StallsBlowUpOutOfDistributionOn5g) {
  // The paper's headline (Fig. 17): trained without 5G dynamics, the learned
  // policy incurs far more stall time on mmWave than robustMPC.
  Fixture f;
  wa::PensieveLikeAbr pensieve;
  Rng rng(5);
  pensieve.train(wa::video_ladder_4g(), f.traces_4g, f.options, rng);

  const auto video = wa::video_ladder_5g();
  const auto qoe_pensieve =
      wa::evaluate_on_traces(video, f.traces_5g, pensieve, f.options);

  wa::HarmonicMeanPredictor predictor;
  wa::ModelPredictiveAbr robust(wa::ModelPredictiveAbr::Variant::kRobust,
                                predictor);
  const auto qoe_robust =
      wa::evaluate_on_traces(video, f.traces_5g, robust, f.options);

  EXPECT_GT(qoe_pensieve.mean_stall_percent,
            1.5 * qoe_robust.mean_stall_percent);
}

TEST(Pensieve, ValidTracksOnArbitraryStates) {
  Fixture f;
  wa::PensieveLikeAbr pensieve;
  Rng rng(6);
  pensieve.train(wa::video_ladder_4g(), f.traces_4g, f.options, rng);

  const auto video = wa::video_ladder_5g();
  Rng fuzz(7);
  for (int i = 0; i < 100; ++i) {
    std::vector<double> history;
    for (int j = 0; j < 5; ++j) history.push_back(fuzz.uniform(0.1, 900.0));
    wa::AbrContext context;
    context.video = &video;
    context.next_chunk = 10;
    context.chunk_count = 40;
    context.buffer_s = fuzz.uniform(0.0, 30.0);
    context.max_buffer_s = 30.0;
    context.last_track = static_cast<int>(fuzz.uniform_int(0, 5));
    context.past_chunk_mbps = history;
    const int track = pensieve.choose_track(context);
    EXPECT_GE(track, 0);
    EXPECT_LT(track, 6);
  }
}
