// Tests for walking campaigns and ML power-model fitting (Sec. 4.4-4.5).
#include "power/fitting.h"

#include <gtest/gtest.h>

#include "core/error.h"
#include "core/rng.h"
#include "core/stats.h"
#include "power/campaign.h"
#include "radio/ue.h"

namespace wp = wild5g::power;
namespace wr = wild5g::radio;
using wild5g::Rng;

namespace {

wp::WalkingCampaignConfig mmwave_campaign() {
  wp::WalkingCampaignConfig config;
  config.network = {wr::Carrier::kVerizon, wr::Band::kNrMmWave,
                    wr::DeploymentMode::kNsa};
  config.ue = wr::galaxy_s20u();
  return config;
}

}  // namespace

TEST(Campaign, ProducesAlignedSamples) {
  Rng rng(1);
  const auto samples =
      wp::run_walking_campaign(mmwave_campaign(),
                               wp::DevicePowerProfile::s20u(), rng);
  EXPECT_EQ(samples.size(), 12000u);  // 1200 s at 10 Hz
  for (const auto& s : samples) {
    EXPECT_GE(s.dl_mbps, 0.0);
    EXPECT_GT(s.power_mw, 0.0);
    EXPECT_LE(s.rsrp_dbm, -60.0);
    EXPECT_GE(s.rsrp_dbm, -140.0);
  }
}

TEST(Campaign, DeterministicInSeed) {
  Rng a(2);
  Rng b(2);
  const auto sa = wp::run_walking_campaign(mmwave_campaign(),
                                           wp::DevicePowerProfile::s20u(), a);
  const auto sb = wp::run_walking_campaign(mmwave_campaign(),
                                           wp::DevicePowerProfile::s20u(), b);
  ASSERT_EQ(sa.size(), sb.size());
  EXPECT_DOUBLE_EQ(sa[100].power_mw, sb[100].power_mw);
}

TEST(Campaign, PowerCorrelatesWithThroughput) {
  Rng rng(3);
  const auto samples = wp::run_walking_campaign(
      mmwave_campaign(), wp::DevicePowerProfile::s20u(), rng);
  std::vector<double> tput, power;
  for (const auto& s : samples) {
    tput.push_back(s.dl_mbps);
    power.push_back(s.power_mw);
  }
  const auto fit = wild5g::stats::linear_fit(tput, power);
  EXPECT_GT(fit.slope, 0.5);  // higher throughput -> more power (Fig. 13)
  EXPECT_GT(fit.r_squared, 0.3);
}

TEST(Fitting, FeatureSetNames) {
  EXPECT_EQ(wp::to_string(wp::FeatureSet::kThroughputAndSignal), "TH+SS");
  EXPECT_EQ(wp::to_string(wp::FeatureSet::kThroughputOnly), "TH");
  EXPECT_EQ(wp::to_string(wp::FeatureSet::kSignalOnly), "SS");
}

TEST(Fitting, ThroughputPlusSignalBeatsBothAblations) {
  // Fig. 15: TH+SS < TH < SS in MAPE, for every configuration. Exercise the
  // mmWave config where the effect is largest.
  Rng rng(4);
  const auto samples = wp::run_walking_campaign(
      mmwave_campaign(), wp::DevicePowerProfile::s20u(), rng);

  auto fit_mape = [&](wp::FeatureSet features, std::uint64_t seed) {
    wp::PowerModelFit fit(features);
    Rng split_rng(seed);
    fit.fit(samples, split_rng);
    return fit.test_mape_percent();
  };
  const double both = fit_mape(wp::FeatureSet::kThroughputAndSignal, 10);
  const double th = fit_mape(wp::FeatureSet::kThroughputOnly, 10);
  const double ss = fit_mape(wp::FeatureSet::kSignalOnly, 10);
  EXPECT_LT(both, th);
  EXPECT_LT(th, ss);
  EXPECT_LT(both, 6.0);   // Fig. 15 shows TH+SS in the low single digits
  EXPECT_GT(ss, 8.0);     // SS-only is far off for mmWave
}

TEST(Fitting, PredictionTracksGroundTruthRail) {
  Rng rng(5);
  const auto samples = wp::run_walking_campaign(
      mmwave_campaign(), wp::DevicePowerProfile::s20u(), rng);
  wp::PowerModelFit fit(wp::FeatureSet::kThroughputAndSignal);
  Rng split_rng(6);
  fit.fit(samples, split_rng);

  const auto device = wp::DevicePowerProfile::s20u();
  const double truth =
      device.transfer_power_mw(wp::RailKey::kNsaMmWave, 800.0, 24.0, -82.0);
  EXPECT_NEAR(fit.predict_mw(800.0, 24.0, -82.0), truth, 0.15 * truth);
}

TEST(Fitting, EnergyEstimateMatchesHandIntegration) {
  Rng rng(7);
  const auto samples = wp::run_walking_campaign(
      mmwave_campaign(), wp::DevicePowerProfile::s20u(), rng);
  wp::PowerModelFit fit(wp::FeatureSet::kThroughputAndSignal);
  Rng split_rng(8);
  fit.fit(samples, split_rng);

  const std::vector<wp::PowerModelFit::UsageSlot> usage = {
      {500.0, 15.0, -80.0, 2.0}, {50.0, 2.0, -95.0, 3.0}};
  double expected = 0.0;
  for (const auto& slot : usage) {
    expected += fit.predict_mw(slot.dl_mbps, slot.ul_mbps, slot.rsrp_dbm) /
                1000.0 * slot.duration_s;
  }
  EXPECT_NEAR(fit.estimate_energy_j(usage), expected, 1e-9);
}

TEST(Fitting, RejectsTinyCampaign) {
  wp::PowerModelFit fit(wp::FeatureSet::kThroughputOnly);
  std::vector<wp::CampaignSample> tiny(10);
  Rng rng(9);
  EXPECT_THROW(fit.fit(tiny, rng), wild5g::Error);
}

TEST(Fitting, LowBandCampaignAlsoFits) {
  wp::WalkingCampaignConfig config;
  config.network = {wr::Carrier::kTMobile, wr::Band::kNrLowBand,
                    wr::DeploymentMode::kSa};
  config.ue = wr::galaxy_s20u();
  Rng rng(10);
  const auto samples = wp::run_walking_campaign(
      config, wp::DevicePowerProfile::s20u(), rng);
  wp::PowerModelFit fit(wp::FeatureSet::kThroughputAndSignal);
  Rng split_rng(11);
  fit.fit(samples, split_rng);
  EXPECT_LT(fit.test_mape_percent(), 8.0);
}

TEST(ControlledSweep, CoversLowThroughputAtGoodSignal) {
  wp::ControlledSweepConfig sweep;
  sweep.network = {wr::Carrier::kVerizon, wr::Band::kNrMmWave,
                   wr::DeploymentMode::kNsa};
  sweep.ue = wr::galaxy_s20u();
  Rng rng(20);
  const auto samples = wp::run_controlled_sweep(
      sweep, wp::DevicePowerProfile::s20u(), rng);
  ASSERT_FALSE(samples.empty());
  int low_rate_good_signal = 0;
  for (const auto& s : samples) {
    EXPECT_GE(s.dl_mbps, 0.0);
    EXPECT_GT(s.power_mw, 0.0);
    if (s.dl_mbps < 50.0 && s.rsrp_dbm > -85.0) ++low_rate_good_signal;
  }
  // The whole point of the controlled sweep: dense coverage of the
  // low-throughput/good-signal region walking campaigns miss.
  EXPECT_GT(low_rate_good_signal, static_cast<int>(samples.size()) / 10);
}

TEST(ControlledSweep, TargetsReachLinkCapacity) {
  wp::ControlledSweepConfig sweep;
  sweep.network = {wr::Carrier::kVerizon, wr::Band::kNrMmWave,
                   wr::DeploymentMode::kNsa};
  sweep.ue = wr::galaxy_s20u();
  Rng rng(21);
  const auto samples = wp::run_controlled_sweep(
      sweep, wp::DevicePowerProfile::s20u(), rng);
  double max_dl = 0.0;
  for (const auto& s : samples) max_dl = std::max(max_dl, s.dl_mbps);
  const double capacity = wr::link_capacity_mbps(
      sweep.network, sweep.ue, wr::Direction::kDownlink, sweep.rsrp_dbm);
  EXPECT_GT(max_dl, 0.9 * capacity);
}

TEST(ControlledSweep, CombinedTrainingImprovesAppRegionAccuracy) {
  // Fitting on walking + controlled data must predict the low-rate/good-
  // signal operating point better than walking data alone.
  Rng rng(22);
  auto walking = wp::run_walking_campaign(
      mmwave_campaign(), wp::DevicePowerProfile::s20u(), rng);
  wp::PowerModelFit walking_only(wp::FeatureSet::kThroughputAndSignal);
  Rng split_a(23);
  walking_only.fit(walking, split_a);

  wp::ControlledSweepConfig sweep;
  sweep.network = mmwave_campaign().network;
  sweep.ue = mmwave_campaign().ue;
  Rng sweep_rng(24);
  const auto controlled = wp::run_controlled_sweep(
      sweep, wp::DevicePowerProfile::s20u(), sweep_rng);
  auto combined = walking;
  combined.insert(combined.end(), controlled.begin(), controlled.end());
  wp::PowerModelFit both(wp::FeatureSet::kThroughputAndSignal);
  Rng split_b(25);
  both.fit(combined, split_b);

  const auto device = wp::DevicePowerProfile::s20u();
  const double truth =
      device.transfer_power_mw(wp::RailKey::kNsaMmWave, 15.0, 0.5, -79.0);
  const double err_walking =
      std::abs(walking_only.predict_mw(15.0, 0.5, -79.0) - truth);
  const double err_both =
      std::abs(both.predict_mw(15.0, 0.5, -79.0) - truth);
  EXPECT_LT(err_both, err_walking + 1.0);
  EXPECT_LT(err_both / truth, 0.05);
}
