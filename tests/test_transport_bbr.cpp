// Tests for the fluid BBR model.
#include "transport/bbr.h"

#include <gtest/gtest.h>

#include "core/error.h"
#include "core/rng.h"

namespace wt = wild5g::transport;
using wild5g::Rng;

namespace {

wt::PathConfig lossy_path(double rtt_ms, double capacity_mbps) {
  wt::PathConfig path;
  path.rtt_ms = rtt_ms;
  path.capacity_mbps = capacity_mbps;
  path.loss_event_rate_per_s = 0.1;
  path.loss_per_packet = 4e-6;
  return path;
}

}  // namespace

TEST(Bbr, SingleFlowFillsCleanPipe) {
  wt::PathConfig path = lossy_path(30.0, 1500.0);
  path.loss_event_rate_per_s = 0.0;
  path.loss_per_packet = 0.0;
  Rng rng(1);
  const auto result = wt::simulate_bbr(1, path, {}, 20.0, rng);
  EXPECT_GT(result.aggregate_goodput_mbps, 0.85 * path.capacity_mbps);
  EXPECT_LE(result.aggregate_goodput_mbps, path.capacity_mbps);
}

TEST(Bbr, LossBarelyMovesThroughput) {
  // The defining contrast with CUBIC: random loss does not collapse BBR.
  Rng rng_a(2);
  const auto clean = wt::simulate_bbr(
      1,
      [] {
        auto p = lossy_path(60.0, 2000.0);
        p.loss_event_rate_per_s = 0.0;
        p.loss_per_packet = 0.0;
        return p;
      }(),
      {}, 20.0, rng_a);
  Rng rng_b(2);
  const auto lossy = wt::simulate_bbr(1, lossy_path(60.0, 2000.0), {}, 20.0,
                                      rng_b);
  EXPECT_GT(lossy.aggregate_goodput_mbps,
            0.95 * clean.aggregate_goodput_mbps);
  EXPECT_GT(lossy.loss_events, 0);
}

TEST(Bbr, BeatsCubicOnLongLossyPath) {
  // The Sec. 3.2 "TCP inefficacy": at transcontinental RTT with per-packet
  // loss, a single CUBIC connection craters while BBR holds near capacity.
  const auto path = lossy_path(90.0, 2000.0);
  Rng rng_bbr(3);
  const auto bbr = wt::simulate_bbr(1, path, {}, 20.0, rng_bbr);
  Rng rng_cubic(3);
  const auto cubic = wt::simulate_tcp(1, path, wt::tuned_tcp_options(), 20.0,
                                      rng_cubic);
  EXPECT_GT(bbr.aggregate_goodput_mbps,
            1.5 * cubic.aggregate_goodput_mbps);
}

TEST(Bbr, FlowControlWindowStillBinds) {
  wt::BbrOptions options;
  options.wmem_bytes = 1.0e6;  // 1 MB at 80 ms -> 100 Mbps ceiling
  wt::PathConfig path = lossy_path(80.0, 2000.0);
  Rng rng(4);
  const auto result = wt::simulate_bbr(1, path, options, 20.0, rng);
  EXPECT_LT(result.aggregate_goodput_mbps, 105.0);
  EXPECT_GT(result.aggregate_goodput_mbps, 70.0);
}

TEST(Bbr, SharesBottleneckAcrossFlows) {
  const auto path = lossy_path(40.0, 1200.0);
  Rng rng(5);
  const auto result = wt::simulate_bbr(8, path, {}, 20.0, rng);
  EXPECT_GT(result.aggregate_goodput_mbps, 0.85 * path.capacity_mbps);
  EXPECT_LE(result.aggregate_goodput_mbps, path.capacity_mbps);
  double sum = 0.0;
  for (double share : result.per_connection_mbps) sum += share;
  EXPECT_NEAR(sum, result.aggregate_goodput_mbps, 1e-6);
}

TEST(Bbr, DeterministicInSeed) {
  const auto path = lossy_path(30.0, 800.0);
  Rng a(6);
  Rng b(6);
  EXPECT_DOUBLE_EQ(
      wt::simulate_bbr(2, path, {}, 15.0, a).aggregate_goodput_mbps,
      wt::simulate_bbr(2, path, {}, 15.0, b).aggregate_goodput_mbps);
}

TEST(Bbr, RejectsInvalidArguments) {
  Rng rng(7);
  EXPECT_THROW((void)wt::simulate_bbr(0, lossy_path(30.0, 100.0), {}, 10.0,
                                      rng),
               wild5g::Error);
  EXPECT_THROW(
      (void)wt::simulate_bbr(1, lossy_path(30.0, 100.0), {}, 0.5, rng),
      wild5g::Error);
}
