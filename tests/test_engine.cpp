// Engine suite: the campaign engine's checkpoint/resume determinism
// contract (DESIGN.md section 12) plus the serialization plumbing under it.
//
// The heart of the suite is resume byte-identity: checkpoint a metro
// campaign at several different yield points, restore each snapshot into a
// fresh campaign, run the remaining steps, and require the final metrics
// document to be byte-for-byte identical to an uninterrupted run — at
// --threads 1 and 8, with and without a fault plan. Everything a campaign's
// state touches (Rng text state, SampleAccumulator sketches, the
// partially-built document) must round-trip losslessly for this to hold.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/json.h"
#include "core/parallel.h"
#include "core/quantile_sketch.h"
#include "core/rng.h"
#include "engine/campaign.h"
#include "engine/metrics.h"
#include "engine/runner.h"
#include "engine/snapshot.h"
#include "faults/fault_plan.h"

namespace {

using namespace wild5g;

// --- serialization plumbing -------------------------------------------------

TEST(engine, rng_state_round_trips_mid_stream) {
  Rng rng(20210823);
  for (int i = 0; i < 1000; ++i) (void)rng.uniform(0.0, 1.0);
  Rng restored = Rng::deserialize_state(rng.serialize_state());
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(rng.uniform(0.0, 1.0), restored.uniform(0.0, 1.0));
  }
}

TEST(engine, sketch_round_trip_preserves_quantiles_exactly) {
  stats::QuantileSketch sketch(0.01);
  Rng rng(7);
  for (int i = 0; i < 20000; ++i) {
    sketch.add(rng.uniform(-50.0, 900.0));
  }
  sketch.add(0.0);  // exercise the zero bucket
  const stats::QuantileSketch restored =
      stats::QuantileSketch::from_json(sketch.to_json());
  for (const double q : {0.0, 5.0, 50.0, 95.0, 99.0, 100.0}) {
    EXPECT_DOUBLE_EQ(sketch.quantile(q), restored.quantile(q)) << q;
  }
  EXPECT_EQ(sketch.count(), restored.count());
  // The re-serialized form must be byte-identical — snapshots of snapshots
  // cannot drift.
  EXPECT_EQ(json::dump(sketch.to_json()), json::dump(restored.to_json()));
}

TEST(engine, accumulator_round_trips_in_both_modes) {
  // Exact mode: below the spill limit, samples (and their order) survive.
  stats::SampleAccumulator exact;
  Rng rng(11);
  for (int i = 0; i < 100; ++i) exact.add(rng.uniform(0.0, 10.0));
  const stats::SampleAccumulator exact_restored =
      stats::SampleAccumulator::from_json(exact.to_json());
  EXPECT_DOUBLE_EQ(exact.percentile(50.0), exact_restored.percentile(50.0));
  EXPECT_EQ(json::dump(exact.to_json()), json::dump(exact_restored.to_json()));

  // Sketch mode: past the spill limit the DDSketch state must round-trip.
  stats::SampleAccumulator spilled;
  for (int i = 0; i < 10000; ++i) spilled.add(rng.uniform(0.0, 10.0));
  const stats::SampleAccumulator spilled_restored =
      stats::SampleAccumulator::from_json(spilled.to_json());
  EXPECT_DOUBLE_EQ(spilled.percentile(95.0),
                   spilled_restored.percentile(95.0));
  EXPECT_EQ(json::dump(spilled.to_json()),
            json::dump(spilled_restored.to_json()));
}

TEST(engine, accumulator_rejects_malformed_state) {
  EXPECT_THROW((void)stats::SampleAccumulator::from_json(
                   json::parse(R"({"exact_limit":8192,"alpha":0.01})")),
               Error);
  // Both exact and sketch present: ambiguous.
  EXPECT_THROW(
      (void)stats::SampleAccumulator::from_json(json::parse(
          R"({"exact_limit":8192,"alpha":0.01,"sum":0,"exact":[],)"
          R"("sketch":{}})")),
      Error);
}

TEST(engine, request_round_trips_full_64_bit_seed) {
  engine::CampaignRequest request;
  request.campaign = "metro_load";
  request.seed = 0xFFFFFFFFFFFFFFFFULL;  // unrepresentable as a double
  request.params = json::Value::object();
  request.params.set("cells", 4);
  const engine::CampaignRequest restored =
      engine::request_from_json(engine::request_to_json(request));
  EXPECT_EQ(restored.seed, request.seed);
  EXPECT_EQ(restored.campaign, request.campaign);
}

TEST(engine, snapshot_rejects_wrong_version_and_format) {
  engine::Snapshot snapshot;
  snapshot.request.campaign = "metro_load";
  json::Value doc = snapshot.to_json();
  doc.set("version", engine::kSnapshotVersion + 1);
  EXPECT_THROW((void)engine::Snapshot::from_json(doc), Error);
  json::Value doc2 = snapshot.to_json();
  doc2.set("format", "not-a-snapshot");
  EXPECT_THROW((void)engine::Snapshot::from_json(doc2), Error);
}

TEST(engine, document_restore_replaces_state_byte_identically) {
  engine::MetricsDocument doc("unit", 1);
  doc.metric("alpha", 1.5);
  Table table("T");
  table.set_header({"a"});
  table.add_row({"1"});
  doc.record(table);
  doc.set_flag("interrupted");
  engine::MetricsDocument other("unit", 1);
  other.metric("junk", 9.0);  // must be discarded by restore
  other.restore_state(doc.checkpoint_state());
  EXPECT_EQ(json::dump(doc.document()), json::dump(other.document()));
}

// --- runner semantics -------------------------------------------------------

/// A minimal campaign recording which steps ran.
class CountingCampaign : public engine::Campaign {
 public:
  explicit CountingCampaign(std::size_t steps) : steps_(steps) {}
  [[nodiscard]] std::size_t total_steps() const override { return steps_; }
  [[nodiscard]] json::Value execute_step(std::size_t index,
                                         engine::CampaignContext&) override {
    executed.push_back(index);
    json::Value frame = json::Value::object();
    frame.set("i", static_cast<std::uint64_t>(index));
    return frame;
  }
  [[nodiscard]] json::Value checkpoint_state() const override {
    return json::Value::object();
  }
  void restore_state(const json::Value&) override {}

  std::vector<std::size_t> executed;

 private:
  std::size_t steps_;
};

TEST(engine, runner_completes_and_reports_next_step) {
  CountingCampaign campaign(4);
  engine::MetricsDocument doc("unit", 1);
  engine::CampaignContext ctx{doc, nullptr};
  const engine::RunOutcome outcome =
      engine::run_steps(campaign, ctx, engine::RunControl{});
  EXPECT_EQ(outcome.status, engine::RunStatus::kCompleted);
  EXPECT_EQ(outcome.steps_executed, 4u);
  EXPECT_EQ(outcome.next_step, 4u);
  EXPECT_EQ(campaign.executed, (std::vector<std::size_t>{0, 1, 2, 3}));
}

TEST(engine, runner_deadline_steps_is_deterministic) {
  CountingCampaign campaign(10);
  engine::MetricsDocument doc("unit", 1);
  engine::CampaignContext ctx{doc, nullptr};
  engine::RunControl control;
  control.deadline_steps = 3;
  const engine::RunOutcome outcome =
      engine::run_steps(campaign, ctx, control);
  EXPECT_EQ(outcome.status, engine::RunStatus::kDeadline);
  EXPECT_EQ(outcome.steps_executed, 3u);
  EXPECT_EQ(outcome.next_step, 3u);
}

TEST(engine, runner_start_step_resumes_where_told) {
  CountingCampaign campaign(5);
  engine::MetricsDocument doc("unit", 1);
  engine::CampaignContext ctx{doc, nullptr};
  engine::RunControl control;
  control.start_step = 3;
  const engine::RunOutcome outcome =
      engine::run_steps(campaign, ctx, control);
  EXPECT_EQ(outcome.steps_executed, 2u);
  EXPECT_EQ(campaign.executed, (std::vector<std::size_t>{3, 4}));
}

TEST(engine, runner_checks_supervision_before_each_step) {
  CountingCampaign campaign(5);
  engine::MetricsDocument doc("unit", 1);
  engine::CampaignContext ctx{doc, nullptr};
  engine::RunControl control;
  int polls = 0;
  control.cancelled = [&polls] { return ++polls > 2; };
  const engine::RunOutcome outcome =
      engine::run_steps(campaign, ctx, control);
  EXPECT_EQ(outcome.status, engine::RunStatus::kCancelled);
  EXPECT_EQ(outcome.steps_executed, 2u);
  // Interrupted outranks cancelled at the same yield point.
  CountingCampaign both(2);
  engine::RunControl tie;
  tie.interrupted = [] { return true; };
  tie.cancelled = [] { return true; };
  EXPECT_EQ(engine::run_steps(both, ctx, tie).status,
            engine::RunStatus::kInterrupted);
}

TEST(engine, runner_frame_and_yield_fire_in_step_order) {
  CountingCampaign campaign(3);
  engine::MetricsDocument doc("unit", 1);
  engine::CampaignContext ctx{doc, nullptr};
  engine::RunControl control;
  std::vector<std::string> events;
  control.on_frame = [&](std::size_t step, const json::Value&) {
    events.push_back("frame" + std::to_string(step));
  };
  control.on_yield = [&](std::size_t next) {
    events.push_back("yield" + std::to_string(next));
  };
  (void)engine::run_steps(campaign, ctx, control);
  EXPECT_EQ(events, (std::vector<std::string>{"frame0", "yield1", "frame1",
                                              "yield2", "frame2", "yield3"}));
}

// --- checkpoint/resume byte-identity ---------------------------------------

faults::FaultPlan radio_plan() {
  faults::FaultPlan plan;
  plan.name = "engine_unit_radio";
  plan.windows = {{faults::FaultKind::kMmwaveBlockage, 5.0, 10.0, 20.0},
                  {faults::FaultKind::kNrToLteOutage, 20.0, 8.0, 0.3}};
  plan.validate();
  return plan;
}

engine::CampaignRequest small_request(const std::string& campaign,
                                      bool with_faults) {
  engine::CampaignRequest request;
  request.campaign = campaign;
  request.seed = 20210823;
  request.params = json::Value::object();
  if (campaign == "drive_soak") {
    request.params.set("intervals", 6);
    request.params.set("interval_s", 20);
    request.params.set("cells", 3);
    request.params.set("ues", 8);
  } else {
    request.params.set("cells", 4);
    request.params.set("ues", 12);
  }
  if (with_faults) request.fault_plan = radio_plan();
  return request;
}

/// Runs the campaign uninterrupted and returns the dumped final document.
std::string run_uninterrupted(const engine::CampaignRequest& request) {
  engine::MetricsDocument doc(
      request.campaign, request.seed,
      request.fault_plan.has_value() ? request.fault_plan->name
                                     : std::string{});
  engine::CampaignContext ctx{doc, nullptr};
  auto campaign = engine::make_campaign(request);
  const engine::RunOutcome outcome =
      engine::run_steps(*campaign, ctx, engine::RunControl{});
  EXPECT_EQ(outcome.status, engine::RunStatus::kCompleted);
  return json::dump(doc.document());
}

/// Runs to `stop_at` steps, snapshots (through JSON text, as the service
/// does), restores into a fresh campaign, finishes, and returns the dump.
std::string run_with_checkpoint_at(const engine::CampaignRequest& request,
                                   std::size_t stop_at) {
  json::Value snapshot_text;
  {
    engine::MetricsDocument doc(
        request.campaign, request.seed,
        request.fault_plan.has_value() ? request.fault_plan->name
                                       : std::string{});
    engine::CampaignContext ctx{doc, nullptr};
    auto campaign = engine::make_campaign(request);
    engine::RunControl control;
    control.deadline_steps = stop_at;
    const engine::RunOutcome outcome =
        engine::run_steps(*campaign, ctx, control);
    EXPECT_EQ(outcome.status, engine::RunStatus::kDeadline);
    engine::Snapshot snapshot;
    snapshot.request = request;
    snapshot.next_step = outcome.next_step;
    snapshot.campaign_state = campaign->checkpoint_state();
    snapshot.document_state = doc.checkpoint_state();
    // Round-trip through text so nothing survives via in-memory aliasing.
    snapshot_text = json::parse(json::dump(snapshot.to_json()));
  }
  const engine::Snapshot restored = engine::Snapshot::from_json(snapshot_text);
  engine::MetricsDocument doc(
      restored.request.campaign, restored.request.seed,
      restored.request.fault_plan.has_value()
          ? restored.request.fault_plan->name
          : std::string{});
  doc.restore_state(restored.document_state);
  engine::CampaignContext ctx{doc, nullptr};
  auto campaign = engine::make_campaign(restored.request);
  campaign->restore_state(restored.campaign_state);
  engine::RunControl control;
  control.start_step = restored.next_step;
  const engine::RunOutcome outcome =
      engine::run_steps(*campaign, ctx, control);
  EXPECT_EQ(outcome.status, engine::RunStatus::kCompleted);
  return json::dump(doc.document());
}

class EngineResume : public ::testing::TestWithParam<std::size_t> {};

TEST_P(EngineResume, metro_load_resumes_byte_identically_at_any_threads) {
  engine::register_builtin_campaigns();
  const engine::CampaignRequest request =
      small_request("metro_load", /*with_faults=*/false);
  for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    parallel::set_thread_count(threads);
    const std::string baseline = run_uninterrupted(request);
    const std::string resumed = run_with_checkpoint_at(request, GetParam());
    EXPECT_EQ(baseline, resumed)
        << "resume from step " << GetParam() << " diverged at " << threads
        << " thread(s)";
  }
  parallel::set_thread_count(0);
}

TEST_P(EngineResume, drive_soak_with_faults_resumes_byte_identically) {
  engine::register_builtin_campaigns();
  const engine::CampaignRequest request =
      small_request("drive_soak", /*with_faults=*/true);
  for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    parallel::set_thread_count(threads);
    const std::string baseline = run_uninterrupted(request);
    const std::string resumed = run_with_checkpoint_at(request, GetParam());
    EXPECT_EQ(baseline, resumed)
        << "faulted resume from step " << GetParam() << " diverged at "
        << threads << " thread(s)";
  }
  parallel::set_thread_count(0);
}

// Three different yield points: right after the first step, mid-campaign,
// and one step before the end.
INSTANTIATE_TEST_SUITE_P(YieldPoints, EngineResume,
                         ::testing::Values(std::size_t{1}, std::size_t{3},
                                           std::size_t{5}));

TEST(engine, snapshot_file_round_trip_and_atomic_write) {
  engine::register_builtin_campaigns();
  const engine::CampaignRequest request =
      small_request("metro_qoe", /*with_faults=*/false);
  engine::MetricsDocument doc(request.campaign, request.seed);
  engine::CampaignContext ctx{doc, nullptr};
  auto campaign = engine::make_campaign(request);
  engine::RunControl control;
  control.deadline_steps = 2;
  (void)engine::run_steps(*campaign, ctx, control);
  engine::Snapshot snapshot;
  snapshot.request = request;
  snapshot.next_step = 2;
  snapshot.campaign_state = campaign->checkpoint_state();
  snapshot.document_state = doc.checkpoint_state();
  const std::string path = ::testing::TempDir() + "engine_unit.ckpt";
  engine::save_snapshot(snapshot, path);
  // The temp file must not survive a successful rename.
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good());
  const engine::Snapshot loaded = engine::load_snapshot(path);
  EXPECT_EQ(loaded.next_step, 2u);
  EXPECT_EQ(json::dump(loaded.to_json()), json::dump(snapshot.to_json()));
  std::remove(path.c_str());
  EXPECT_THROW((void)engine::load_snapshot(path), Error);
}

TEST(engine, factories_reject_unknown_params_and_unsupported_faults) {
  engine::register_builtin_campaigns();
  engine::CampaignRequest request;
  request.campaign = "metro_load";
  request.params = json::Value::object();
  request.params.set("cels", 4);  // typo must fail, not silently default
  EXPECT_THROW((void)engine::make_campaign(request), Error);

  engine::CampaignRequest faulted = small_request("metro_load", false);
  faults::FaultPlan plan;
  plan.name = "bad_kinds";
  plan.windows = {{faults::FaultKind::kChunkStall, 0.0, 5.0, 0.5}};
  faulted.fault_plan = plan;
  EXPECT_THROW((void)engine::make_campaign(faulted), Error);

  engine::CampaignRequest unknown;
  unknown.campaign = "no_such_campaign";
  EXPECT_THROW((void)engine::make_campaign(unknown), Error);
}

}  // namespace
