// Tests for the discrete-event simulator.
#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <vector>

#include "core/error.h"

using wild5g::sim::Simulator;

TEST(Simulator, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(30.0, [&] { order.push_back(3); });
  sim.schedule_at(10.0, [&] { order.push_back(1); });
  sim.schedule_at(20.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now_ms(), 30.0);
}

TEST(Simulator, SimultaneousEventsFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.schedule_at(5.0, [&order, i] { order.push_back(i); });
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, ScheduleInIsRelative) {
  Simulator sim;
  double fired_at = -1.0;
  sim.schedule_at(10.0, [&] {
    sim.schedule_in(5.0, [&] { fired_at = sim.now_ms(); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(fired_at, 15.0);
}

TEST(Simulator, CancelPreventsFiring) {
  Simulator sim;
  bool fired = false;
  const auto id = sim.schedule_at(10.0, [&] { fired = true; });
  sim.cancel(id);
  sim.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.pending_count(), 0u);
}

TEST(Simulator, CancelUnknownIsNoop) {
  Simulator sim;
  sim.cancel(12345);  // must not throw
  SUCCEED();
}

TEST(Simulator, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 10) sim.schedule_in(1.0, chain);
  };
  sim.schedule_at(0.0, chain);
  sim.run();
  EXPECT_EQ(count, 10);
  EXPECT_DOUBLE_EQ(sim.now_ms(), 9.0);
}

TEST(Simulator, RunUntilStopsAtHorizon) {
  Simulator sim;
  std::vector<double> fired;
  for (double t = 1.0; t <= 10.0; t += 1.0) {
    sim.schedule_at(t, [&fired, &sim] { fired.push_back(sim.now_ms()); });
  }
  sim.run_until(5.0);
  EXPECT_EQ(fired.size(), 5u);
  EXPECT_DOUBLE_EQ(sim.now_ms(), 5.0);
  EXPECT_EQ(sim.pending_count(), 5u);
  sim.run();
  EXPECT_EQ(fired.size(), 10u);
}

TEST(Simulator, RunUntilAdvancesClockEvenWithoutEvents) {
  Simulator sim;
  sim.run_until(42.0);
  EXPECT_DOUBLE_EQ(sim.now_ms(), 42.0);
}

TEST(Simulator, PastSchedulingRejected) {
  Simulator sim;
  sim.schedule_at(10.0, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(5.0, [] {}), wild5g::Error);
  EXPECT_THROW(sim.schedule_in(-1.0, [] {}), wild5g::Error);
}

TEST(Simulator, NullHandlerRejected) {
  Simulator sim;
  EXPECT_THROW(sim.schedule_at(1.0, nullptr), wild5g::Error);
}

TEST(Simulator, SameInstantFifoHoldsAcrossInterleavedSchedules) {
  // FIFO among same-instant events must follow scheduling order even when
  // the schedules are interleaved with other instants and issued from
  // within running handlers.
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(10.0, [&] { order.push_back(1); });
  sim.schedule_at(5.0, [&] {
    // Scheduled later (from a handler) but for the same instant 10.0:
    // must fire after the ones scheduled earlier.
    sim.schedule_at(10.0, [&] { order.push_back(3); });
  });
  sim.schedule_at(10.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, SameInstantEventCanCancelLaterSibling) {
  // An event may cancel a same-instant event that was scheduled after it;
  // FIFO guarantees the canceller runs first, so the victim must not fire.
  Simulator sim;
  bool victim_fired = false;
  Simulator* sim_ptr = &sim;
  wild5g::sim::EventId victim = 0;
  sim.schedule_at(7.0, [&, sim_ptr] { sim_ptr->cancel(victim); });
  victim = sim.schedule_at(7.0, [&] { victim_fired = true; });
  sim.run();
  EXPECT_FALSE(victim_fired);
  EXPECT_EQ(sim.pending_count(), 0u);
}

TEST(Simulator, CancelOfFiredIdIsNoop) {
  Simulator sim;
  int fired = 0;
  const auto early = sim.schedule_at(1.0, [&] { ++fired; });
  sim.schedule_at(2.0, [&] {
    sim.cancel(early);  // already fired: must be a no-op
    ++fired;
  });
  sim.run();
  EXPECT_EQ(fired, 2);
  sim.cancel(early);  // and again after the run
  EXPECT_EQ(sim.pending_count(), 0u);
}

TEST(Simulator, CancelledIdIsNotReusedForNewEvents) {
  // Cancelling an id and then scheduling again must not resurrect the
  // cancelled handler or confuse bookkeeping.
  Simulator sim;
  bool cancelled_fired = false;
  bool fresh_fired = false;
  const auto id = sim.schedule_at(1.0, [&] { cancelled_fired = true; });
  sim.cancel(id);
  const auto fresh = sim.schedule_at(1.0, [&] { fresh_fired = true; });
  EXPECT_NE(id, fresh);
  sim.run();
  EXPECT_FALSE(cancelled_fired);
  EXPECT_TRUE(fresh_fired);
}

TEST(Simulator, RunUntilFiresEventsAtExactlyTheHorizon) {
  Simulator sim;
  bool at_horizon = false;
  bool past_horizon = false;
  sim.schedule_at(5.0, [&] { at_horizon = true; });
  sim.schedule_at(5.0 + 1e-9, [&] { past_horizon = true; });
  sim.run_until(5.0);
  EXPECT_TRUE(at_horizon);
  EXPECT_FALSE(past_horizon);
  EXPECT_DOUBLE_EQ(sim.now_ms(), 5.0);
  EXPECT_EQ(sim.pending_count(), 1u);
}

TEST(Simulator, RunUntilCanBeResumedRepeatedly) {
  Simulator sim;
  std::vector<double> fired;
  for (double t = 1.0; t <= 6.0; t += 1.0) {
    sim.schedule_at(t, [&fired, &sim] { fired.push_back(sim.now_ms()); });
  }
  sim.run_until(2.0);
  EXPECT_EQ(fired.size(), 2u);
  sim.run_until(2.0);  // same horizon again: nothing new fires
  EXPECT_EQ(fired.size(), 2u);
  sim.run_until(4.5);
  EXPECT_EQ(fired.size(), 4u);
  EXPECT_DOUBLE_EQ(sim.now_ms(), 4.5);
  sim.run();
  EXPECT_EQ(fired, (std::vector<double>{1.0, 2.0, 3.0, 4.0, 5.0, 6.0}));
}

TEST(Simulator, PendingCountTracksScheduleCancelAndFire) {
  Simulator sim;
  EXPECT_EQ(sim.pending_count(), 0u);
  const auto a = sim.schedule_at(1.0, [] {});
  sim.schedule_at(2.0, [] {});
  const auto c = sim.schedule_at(3.0, [] {});
  EXPECT_EQ(sim.pending_count(), 3u);
  sim.cancel(a);
  EXPECT_EQ(sim.pending_count(), 2u);
  sim.cancel(a);  // double-cancel: no effect
  EXPECT_EQ(sim.pending_count(), 2u);
  sim.run_until(2.0);
  EXPECT_EQ(sim.pending_count(), 1u);
  sim.cancel(c);
  EXPECT_EQ(sim.pending_count(), 0u);
  sim.run();  // nothing left; must not fire or throw
  EXPECT_DOUBLE_EQ(sim.now_ms(), 2.0);
}

TEST(Simulator, SelfCancelInsideHandlerIsNoop) {
  // A handler cancelling its own id must be a no-op: the entry is removed
  // from the registry before invocation, so there is nothing to cancel and
  // nothing to double-free or re-fire.
  Simulator sim;
  int fired = 0;
  wild5g::sim::EventId self = 0;
  self = sim.schedule_at(3.0, [&] {
    sim.cancel(self);
    ++fired;
  });
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.pending_count(), 0u);
  sim.cancel(self);  // still a no-op afterwards
}

TEST(Simulator, HandlerCanCancelFutureEventDuringDispatch) {
  Simulator sim;
  bool future_fired = false;
  const auto future = sim.schedule_at(10.0, [&] { future_fired = true; });
  sim.schedule_at(5.0, [&] { sim.cancel(future); });
  sim.run();
  EXPECT_FALSE(future_fired);
  // The cancelled event is skipped without dispatch, and the clock still
  // reflects the last *fired* event.
  EXPECT_DOUBLE_EQ(sim.now_ms(), 5.0);
}

TEST(Simulator, RunUntilAdvancesClockOnEarlyDrain) {
  // The queue drains at t=3 but the horizon is 100: the clock must land on
  // the horizon so back-to-back run_until calls tile a timeline gap-free.
  Simulator sim;
  sim.schedule_at(3.0, [] {});
  sim.run_until(100.0);
  EXPECT_DOUBLE_EQ(sim.now_ms(), 100.0);
  EXPECT_EQ(sim.pending_count(), 0u);
  // schedule_in after the drained window anchors at the horizon, not at
  // the last event.
  double fired_at = -1.0;
  sim.schedule_in(5.0, [&] { fired_at = sim.now_ms(); });
  sim.run();
  EXPECT_DOUBLE_EQ(fired_at, 105.0);
}

TEST(Simulator, RunUntilClockAdvancesWhenOnlyCancelledEventsRemain) {
  // Cancelled-but-unpopped events must not hold the clock back or count as
  // work: run_until over them behaves exactly like an empty queue.
  Simulator sim;
  const auto id = sim.schedule_at(4.0, [] {});
  sim.cancel(id);
  sim.run_until(10.0);
  EXPECT_DOUBLE_EQ(sim.now_ms(), 10.0);
  EXPECT_EQ(sim.pending_count(), 0u);
}

TEST(Simulator, RunUntilPreservesFifoForEventPushedBackPastHorizon) {
  // run_until may pop an event past the horizon and push it back; its seq
  // must survive the round-trip so FIFO among simultaneous events holds on
  // the next run.
  Simulator sim;
  std::vector<int> order;
  // A cancelled event inside the horizon forces pop_next past it and onto
  // the first live 10.0 event, which is then past the horizon: push-back.
  const auto decoy = sim.schedule_at(3.0, [] {});
  sim.schedule_at(10.0, [&] { order.push_back(1); });
  sim.schedule_at(10.0, [&] { order.push_back(2); });
  sim.schedule_at(10.0, [&] { order.push_back(3); });
  sim.cancel(decoy);
  sim.run_until(5.0);  // pops the first 10.0 event, pushes it back
  EXPECT_TRUE(order.empty());
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, TimerRestartPattern) {
  // The RRC inactivity-timer idiom: cancel + reschedule on each activity.
  Simulator sim;
  double expired_at = -1.0;
  wild5g::sim::EventId timer = 0;
  auto arm = [&](double delay) {
    sim.cancel(timer);
    timer = sim.schedule_in(delay, [&] { expired_at = sim.now_ms(); });
  };
  sim.schedule_at(0.0, [&] { arm(10.0); });
  sim.schedule_at(5.0, [&] { arm(10.0); });   // activity: restart
  sim.schedule_at(12.0, [&] { arm(10.0); });  // activity: restart again
  sim.run();
  EXPECT_DOUBLE_EQ(expired_at, 22.0);
}

TEST(Simulator, ArenaReachesSteadyStateUnderEventChurn) {
  // The hot-path contract: after warmup, schedule/fire/cancel churn reuses
  // recycled arena blocks and never grows the reservation.
  Simulator sim;
  int fired = 0;
  for (int i = 0; i < 200; ++i) {
    sim.schedule_in(static_cast<double>(i % 13), [&fired] { ++fired; });
  }
  sim.run();
  const std::size_t reserved = sim.arena_bytes_reserved();
  EXPECT_GT(reserved, 0u);
  for (int round = 0; round < 200; ++round) {
    for (int i = 0; i < 200; ++i) {
      sim.schedule_in(static_cast<double>(i % 13), [&fired] { ++fired; });
    }
    sim.run();
    ASSERT_EQ(sim.arena_bytes_reserved(), reserved) << "round " << round;
  }
  EXPECT_EQ(fired, 200 * 201);
}

TEST(Simulator, ArenaSteadyStateAcrossRunUntilAndCancel) {
  // Interleave run_until windows with cancellations (the fault-injector
  // arm()/disarm() pattern): cancelled handlers recycle their blocks too.
  Simulator sim;
  int fired = 0;
  // Warmup round establishes the working-set reservation.
  std::size_t reserved = 0;
  for (int round = 0; round < 50; ++round) {
    std::vector<wild5g::sim::EventId> victims;
    for (int i = 0; i < 64; ++i) {
      const auto id = sim.schedule_in(static_cast<double>(1 + i % 7),
                                      [&fired] { ++fired; });
      if (i % 2 == 0) victims.push_back(id);
    }
    for (const auto id : victims) sim.cancel(id);
    sim.run_until(sim.now_ms() + 10.0);
    if (round == 0) {
      reserved = sim.arena_bytes_reserved();
      EXPECT_GT(reserved, 0u);
    } else {
      ASSERT_EQ(sim.arena_bytes_reserved(), reserved) << "round " << round;
    }
  }
  EXPECT_EQ(sim.pending_count(), 0u);
  EXPECT_EQ(fired, 50 * 32);
}

TEST(Simulator, CancelledHandlerCaptureIsDestroyed) {
  // Non-trivially-destructible captures must be destroyed on cancel and on
  // simulator teardown, not just on dispatch (ASan would flag the leak).
  auto token = std::make_shared<int>(7);
  Simulator sim;
  const auto id = sim.schedule_at(5.0, [token] { (void)*token; });
  EXPECT_EQ(token.use_count(), 2);
  sim.cancel(id);
  EXPECT_EQ(token.use_count(), 1) << "cancel must destroy the capture";
  {
    Simulator doomed;
    doomed.schedule_at(1.0, [token] { (void)*token; });
    EXPECT_EQ(token.use_count(), 2);
  }
  EXPECT_EQ(token.use_count(), 1) << "teardown must destroy live captures";
}

TEST(Simulator, OversizedCapturesStillFire) {
  // Captures larger than the arena's small-block classes take the
  // dedicated-chunk path; semantics must not change.
  Simulator sim;
  std::array<double, 400> payload{};  // > kMaxSmallBytes when captured
  payload[0] = 1.0;
  payload[399] = 2.0;
  double sum = 0.0;
  sim.schedule_at(1.0, [payload, &sum] { sum = payload[0] + payload[399]; });
  sim.run();
  EXPECT_DOUBLE_EQ(sum, 3.0);
}

// --- same-instant multi-actor scheduling (the metro campaign pattern: N
// UEs share one step boundary, so whole cohorts of events land on the same
// at_ms and their relative order must be pinned) ------------------------

TEST(Simulator, ManyActorsAtOneInstantFireInSchedulingOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int ue = 0; ue < 100; ++ue) {
    sim.schedule_at(5.0, [&order, ue] { order.push_back(ue); });
  }
  sim.run();
  ASSERT_EQ(order.size(), 100u);
  for (int ue = 0; ue < 100; ++ue) {
    ASSERT_EQ(order[static_cast<std::size_t>(ue)], ue)
        << "same-instant events must fire in scheduling order";
  }
  EXPECT_DOUBLE_EQ(sim.now_ms(), 5.0);
}

TEST(Simulator, SameInstantCohortSurvivesCancelDuringDispatch) {
  // The first actor of the cohort cancels every odd-indexed peer while the
  // instant is already dispatching: victims must simply never fire, and
  // the survivors must keep their scheduling order.
  Simulator sim;
  std::vector<int> order;
  std::vector<wild5g::sim::EventId> cohort;
  sim.schedule_at(5.0, [&] {
    order.push_back(-1);
    for (std::size_t i = 1; i < cohort.size(); i += 2) {
      sim.cancel(cohort[i]);
    }
  });
  for (int ue = 0; ue < 50; ++ue) {
    cohort.push_back(sim.schedule_at(5.0, [&order, ue] {
      order.push_back(ue);
    }));
  }
  sim.run();
  ASSERT_EQ(order.size(), 1u + 25u);
  EXPECT_EQ(order.front(), -1);
  for (std::size_t i = 1; i < order.size(); ++i) {
    EXPECT_EQ(order[i], static_cast<int>((i - 1) * 2));
  }
  EXPECT_EQ(sim.pending_count(), 0u);
}

TEST(Simulator, HandlerSchedulingAtTheSameInstantRunsAfterTheCohort) {
  // A same-instant event scheduled *during* dispatch of that instant joins
  // the back of the FIFO: every already-scheduled actor goes first.
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(5.0, [&] {
    order.push_back(0);
    sim.schedule_at(5.0, [&order] { order.push_back(99); });
  });
  sim.schedule_at(5.0, [&order] { order.push_back(1); });
  sim.schedule_at(5.0, [&order] { order.push_back(2); });
  sim.run();
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], 0);
  EXPECT_EQ(order[1], 1);
  EXPECT_EQ(order[2], 2);
  EXPECT_EQ(order[3], 99);
}

TEST(Simulator, InterleavedCohortsOrderByTimeThenScheduling) {
  // Two step boundaries scheduled interleaved (UE 0 at t1, UE 0 at t2,
  // UE 1 at t1, ...): dispatch must sort by time first and scheduling
  // order within each instant, regardless of interleaving.
  Simulator sim;
  std::vector<std::pair<double, int>> order;
  for (int ue = 0; ue < 10; ++ue) {
    sim.schedule_at(10.0, [&order, ue] { order.push_back({10.0, ue}); });
    sim.schedule_at(20.0, [&order, ue] { order.push_back({20.0, ue}); });
  }
  sim.run();
  ASSERT_EQ(order.size(), 20u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)],
              (std::pair<double, int>{10.0, i}));
    EXPECT_EQ(order[static_cast<std::size_t>(10 + i)],
              (std::pair<double, int>{20.0, i}));
  }
}

TEST(Simulator, CohortCancelOfAlreadyFiredPeersIsNoop) {
  // The last actor of an instant cancels the whole cohort, including ids
  // that already fired this instant: fired ids miss (generation bumped),
  // nothing double-fires, and pending drains to zero.
  Simulator sim;
  int fired = 0;
  std::vector<wild5g::sim::EventId> cohort;
  for (int ue = 0; ue < 20; ++ue) {
    cohort.push_back(sim.schedule_at(5.0, [&fired] { ++fired; }));
  }
  sim.schedule_at(5.0, [&] {
    for (const auto id : cohort) sim.cancel(id);
  });
  sim.run();
  EXPECT_EQ(fired, 20);
  EXPECT_EQ(sim.pending_count(), 0u);
}
