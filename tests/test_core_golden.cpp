// Direct unit tests for the golden-metrics comparator (src/core/golden.cpp):
// per-table tolerance overrides keyed by "title", type-change drift, array
// length mismatches, and numeric-string table-cell comparison. The golden.*
// ctest gate exercises these paths end to end, but only on documents that
// match — these tests pin down what a *mismatch* reports.
#include <gtest/gtest.h>

#include <string>

#include "core/golden.h"
#include "core/json.h"

namespace wg = wild5g::golden;
namespace wj = wild5g::json;

namespace {

wj::Value doc(const std::string& text) { return wj::parse(text); }

bool any_path_contains(const std::vector<wg::Drift>& drifts,
                       const std::string& fragment) {
  for (const auto& d : drifts) {
    if (d.path.find(fragment) != std::string::npos) return true;
  }
  return false;
}

}  // namespace

TEST(GoldenComparator, IdenticalDocumentsProduceNoDrift) {
  const auto golden = doc(R"({"bench":"x","metrics":{"a":1.5}})");
  EXPECT_TRUE(wg::compare(golden, golden).empty());
}

TEST(GoldenComparator, DocumentToleranceDefaultsAndOverride) {
  const auto strict = doc(R"({"tolerance":{"rel":0.5,"abs":2.0}})");
  const auto tol = wg::document_tolerance(strict);
  EXPECT_DOUBLE_EQ(tol.rel, 0.5);
  EXPECT_DOUBLE_EQ(tol.abs, 2.0);
  const auto defaults = wg::document_tolerance(doc(R"({})"));
  EXPECT_DOUBLE_EQ(defaults.rel, 1e-6);
  EXPECT_DOUBLE_EQ(defaults.abs, 1e-9);
}

TEST(GoldenComparator, NumberDriftBeyondToleranceIsReported) {
  const auto golden =
      doc(R"({"tolerance":{"rel":1e-6,"abs":1e-9},"metrics":{"m":100.0}})");
  // rel drift 1e-5 > tol 1e-6 → drift; rel drift 1e-7 < tol → clean.
  const auto fresh_drifted =
      doc(R"({"tolerance":{"rel":1e-6,"abs":1e-9},"metrics":{"m":100.001}})");
  EXPECT_FALSE(wg::compare(golden, fresh_drifted).empty());
  const auto fresh_close =
      doc(R"({"tolerance":{"rel":1e-6,"abs":1e-9},"metrics":{"m":100.00001}})");
  EXPECT_TRUE(wg::compare(golden, fresh_close).empty());
}

TEST(GoldenComparator, PerTableToleranceOverrideKeyedByTitle) {
  // The "loose table" override (rel 0.5) forgives a 20% cell drift that the
  // document default (rel 1e-6) would flag; an identically drifted cell in
  // the strict table must still be reported.
  const auto golden = doc(R"({
    "tolerance": {"rel": 1e-6, "abs": 1e-9},
    "tolerances": {"loose table": {"rel": 0.5, "abs": 0.0}},
    "tables": [
      {"title": "loose table", "rows": [["10.0"]]},
      {"title": "strict table", "rows": [["10.0"]]}
    ]})");
  const auto fresh = doc(R"({
    "tolerance": {"rel": 1e-6, "abs": 1e-9},
    "tolerances": {"loose table": {"rel": 0.5, "abs": 0.0}},
    "tables": [
      {"title": "loose table", "rows": [["12.0"]]},
      {"title": "strict table", "rows": [["12.0"]]}
    ]})");
  const auto drifts = wg::compare(golden, fresh);
  ASSERT_EQ(drifts.size(), 1u);
  EXPECT_NE(drifts[0].path.find("tables[1]"), std::string::npos)
      << drifts[0].path;
}

TEST(GoldenComparator, PerMetricToleranceOverrideKeyedByName) {
  const auto golden = doc(R"({
    "tolerances": {"wobbly": {"rel": 0.5, "abs": 0.0}},
    "metrics": {"wobbly": 10.0, "steady": 10.0}})");
  const auto fresh = doc(R"({
    "tolerances": {"wobbly": {"rel": 0.5, "abs": 0.0}},
    "metrics": {"wobbly": 11.0, "steady": 11.0}})");
  const auto drifts = wg::compare(golden, fresh);
  ASSERT_EQ(drifts.size(), 1u);
  EXPECT_EQ(drifts[0].path, "metrics.steady");
}

TEST(GoldenComparator, TypeChangeIsStructuralDrift) {
  const auto golden = doc(R"({"metrics":{"m":1.0}})");
  const auto fresh = doc(R"({"metrics":{"m":"1.0"}})");
  const auto drifts = wg::compare(golden, fresh);
  ASSERT_EQ(drifts.size(), 1u);
  EXPECT_EQ(drifts[0].path, "metrics.m");
  EXPECT_NE(drifts[0].message.find("type changed"), std::string::npos)
      << drifts[0].message;
  EXPECT_NE(drifts[0].message.find("number"), std::string::npos);
  EXPECT_NE(drifts[0].message.find("string"), std::string::npos);
}

TEST(GoldenComparator, ArrayLengthMismatchReportedAndPrefixCompared) {
  // A dropped table row is a drift in its own right; surviving rows are
  // still compared so one report shows everything actionable.
  const auto golden = doc(R"({"tables":[["1.0","2.0","3.0"]]})");
  const auto fresh = doc(R"({"tables":[["1.0","9.0"]]})");
  const auto drifts = wg::compare(golden, fresh);
  ASSERT_EQ(drifts.size(), 2u);
  EXPECT_NE(drifts[0].message.find("length changed"), std::string::npos);
  EXPECT_NE(drifts[0].message.find("golden 3"), std::string::npos);
  EXPECT_TRUE(any_path_contains(drifts, "tables[0][1]"));
}

TEST(GoldenComparator, NumericStringCellsCompareUnderTolerance) {
  // Formatted table cells ("13.50" vs "13.5") get numeric comparison, not
  // byte equality.
  const auto golden = doc(R"({"tables":[["13.50"]]})");
  const auto fresh = doc(R"({"tables":[["13.5"]]})");
  EXPECT_TRUE(wg::compare(golden, fresh).empty());
}

TEST(GoldenComparator, NonNumericStringsCompareExactly) {
  const auto golden = doc(R"({"tables":[["Verizon, Minneapolis"]]})");
  const auto fresh = doc(R"({"tables":[["Verizon, St. Paul"]]})");
  const auto drifts = wg::compare(golden, fresh);
  ASSERT_EQ(drifts.size(), 1u);
  EXPECT_NE(drifts[0].message.find("Verizon, Minneapolis"), std::string::npos);
}

TEST(GoldenComparator, MixedNumericAndTextCellDrifts) {
  // "3.0 Gbps" does not parse fully as a number, so it must byte-compare
  // (and differ); "-" vs "-" matches exactly.
  const auto golden = doc(R"({"tables":[["3.0 Gbps","-"]]})");
  const auto fresh = doc(R"({"tables":[["3.1 Gbps","-"]]})");
  const auto drifts = wg::compare(golden, fresh);
  ASSERT_EQ(drifts.size(), 1u);
  EXPECT_NE(drifts[0].message.find("3.0 Gbps"), std::string::npos);
}

TEST(GoldenComparator, MissingAndUnexpectedKeysAreDrifts) {
  const auto golden = doc(R"({"metrics":{"kept":1.0,"dropped":2.0}})");
  const auto fresh = doc(R"({"metrics":{"kept":1.0,"added":3.0}})");
  const auto drifts = wg::compare(golden, fresh);
  ASSERT_EQ(drifts.size(), 2u);
  EXPECT_TRUE(any_path_contains(drifts, "metrics.dropped"));
  EXPECT_TRUE(any_path_contains(drifts, "metrics.added"));
}

TEST(GoldenComparator, FormatReportOneLinePerDrift) {
  const auto golden = doc(R"({"metrics":{"a":1.0,"b":2.0}})");
  const auto fresh = doc(R"({"metrics":{"a":9.0,"b":9.0}})");
  const auto report = wg::format_report(wg::compare(golden, fresh));
  EXPECT_NE(report.find("metrics.a"), std::string::npos);
  EXPECT_NE(report.find("metrics.b"), std::string::npos);
}
