// Tests for tools/wild5g_lint: every fixture in tests/lint_fixtures/ must
// trip exactly its intended rule, justified suppressions must silence their
// finding, and the real tree (src/, bench/, tools/, examples/) must lint
// clean — that last assertion is the determinism contract the golden-metrics
// harness rests on.
//
// The linter binary path and fixture directory come in as compile
// definitions (see tests/CMakeLists.txt); runs go through popen so we
// exercise the actual CLI, --json output, and exit codes end to end.
#include <gtest/gtest.h>
#include <sys/wait.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>

#include "core/json.h"

namespace {

namespace json = wild5g::json;

struct LintRun {
  int exit_code = -1;
  std::string output;
};

LintRun run_lint(const std::string& args) {
  const std::string command =
      std::string(WILD5G_LINT_BIN) + " " + args + " 2>/dev/null";
  FILE* pipe = popen(command.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << "failed to launch: " << command;
  LintRun run;
  if (pipe == nullptr) return run;
  char buffer[4096];
  std::size_t n = 0;
  while ((n = fread(buffer, 1, sizeof(buffer), pipe)) > 0) {
    run.output.append(buffer, n);
  }
  const int status = pclose(pipe);
  run.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return run;
}

std::string fixture(const std::string& name) {
  return std::string(WILD5G_LINT_FIXTURES) + "/" + name;
}

/// Runs the linter on one fixture and asserts that it exits 1 and that every
/// finding carries exactly the expected rule (counts may exceed one, rules
/// may not differ — a fixture that trips a neighboring rule is a test bug).
void expect_only_rule(const std::string& name, const std::string& rule) {
  const LintRun run = run_lint("--json " + fixture(name));
  ASSERT_EQ(run.exit_code, 1) << name << " output:\n" << run.output;
  const json::Value doc = json::parse(run.output);
  const json::Value* findings = doc.find("findings");
  ASSERT_NE(findings, nullptr);
  ASSERT_GE(findings->size(), 1u) << name;
  for (const auto& entry : findings->as_array()) {
    const json::Value* got = entry.find("rule");
    ASSERT_NE(got, nullptr);
    EXPECT_EQ(got->as_string(), rule)
        << name << " tripped a rule it should not have:\n"
        << run.output;
    const json::Value* line = entry.find("line");
    ASSERT_NE(line, nullptr);
    EXPECT_GT(line->as_number(), 0) << name;
  }
}

void expect_clean(const std::string& name) {
  const LintRun run = run_lint("--json " + fixture(name));
  EXPECT_EQ(run.exit_code, 0) << name << " output:\n" << run.output;
  const json::Value doc = json::parse(run.output);
  const json::Value* count = doc.find("count");
  ASSERT_NE(count, nullptr);
  EXPECT_EQ(count->as_number(), 0) << name;
}

TEST(lint, fixture_ban_random_device) {
  expect_only_rule("bad_random_device.cpp", "ban-random-device");
}

TEST(lint, fixture_ban_c_rand) {
  expect_only_rule("bad_c_rand.cpp", "ban-c-rand");
}

TEST(lint, fixture_ban_wall_clock_time) {
  expect_only_rule("bad_wall_clock.cpp", "ban-wall-clock");
}

TEST(lint, fixture_ban_wall_clock_chrono) {
  expect_only_rule("bad_chrono_clock.cpp", "ban-wall-clock");
}

TEST(lint, fixture_ban_raw_engine) {
  expect_only_rule("bad_raw_engine.cpp", "ban-raw-engine");
}

TEST(lint, fixture_ban_raw_distribution) {
  expect_only_rule("bad_distribution.cpp", "ban-raw-engine");
}

TEST(lint, fixture_unordered_iteration) {
  expect_only_rule("bad_unordered_iteration.cpp", "unordered-iteration");
}

TEST(lint, fixture_float_equality) {
  expect_only_rule("bad_float_equality.cpp", "float-equality");
}

TEST(lint, fixture_printf_float) {
  expect_only_rule("bad_printf_float.cpp", "printf-float");
}

TEST(lint, fixture_catch_swallow) {
  expect_only_rule("bad_catch_swallow.cpp", "catch-swallow");
}

TEST(lint, fixture_bench_sample_hoard) {
  // Virtual path maps tests/lint_fixtures/bench/... to bench/..., so the
  // store-all percentile pattern trips the bench-only rule.
  expect_only_rule("bench/bad_sample_hoard.cpp", "bench-sample-hoard");
}

TEST(lint, fixture_allow_needs_justification) {
  expect_only_rule("bad_allow_missing_justification.cpp",
                   "allow-needs-justification");
}

TEST(lint, fixture_unknown_rule) {
  expect_only_rule("bad_unknown_rule.cpp", "unknown-rule");
}

TEST(lint, fixture_unit_mismatch_assign) {
  expect_only_rule("bad_unit_assign.cpp", "unit-mismatch-assign");
}

TEST(lint, fixture_unit_mismatch_call) {
  expect_only_rule("bad_unit_call.cpp", "unit-mismatch-call");
}

TEST(lint, fixture_unit_double_conversion) {
  expect_only_rule("bad_unit_double_conversion.cpp", "unit-double-conversion");
}

TEST(lint, fixture_parallel_rng_capture) {
  expect_only_rule("bad_parallel_rng_capture.cpp", "parallel-rng-capture");
}

TEST(lint, fixture_parallel_rng_stream) {
  expect_only_rule("bad_parallel_rng_stream.cpp", "parallel-rng-stream");
}

TEST(lint, fixture_bad_effect_write) {
  expect_only_rule("bad_effect_write.cpp", "parallel-effect-write");
}

TEST(lint, fixture_bad_effect_rng) {
  expect_only_rule("bad_effect_rng.cpp", "parallel-effect-rng");
}

TEST(lint, fixture_bad_effect_alias) {
  expect_only_rule("bad_effect_alias.cpp", "parallel-effect-alias");
}

TEST(lint, fixture_bad_effect_unknown) {
  expect_only_rule("bad_effect_unknown.cpp", "parallel-effect-unknown");
}

TEST(lint, fixture_bad_effect_cycle_reaches_fixpoint) {
  // Mutual recursion: the engine must stabilize (this test hangs if the
  // fixpoint does not terminate) and still thread the chain through the
  // cycle to the global write.
  expect_only_rule("bad_effect_cycle.cpp", "parallel-effect-write");
}

TEST(lint, fixture_bad_effect_splice) {
  // Line-spliced global identifier: phase-2 splice removal feeds the effect
  // engine, so the rejoined write is still attributed.
  expect_only_rule("bad_effect_splice.cpp", "parallel-effect-write");
}

TEST(lint, fixture_bad_global_state) {
  expect_only_rule("src/core/bad_global_state.cpp", "global-mutable-state");
}

TEST(lint, fixture_bad_arena_escape) {
  expect_only_rule("src/sim/bad_arena_escape.cpp", "arena-escape");
}

TEST(lint, fixture_engine_blocking_call) {
  // Virtual path maps tests/lint_fixtures/src/engine/... to src/engine/...,
  // so blocking filesystem/sleep calls trip the compute-thread purity rule.
  expect_only_rule("src/engine/bad_engine_blocking.cpp",
                   "engine-blocking-call");
}

TEST(lint, fixture_engine_snapshot_writer_is_exempt) {
  // The sanctioned checkpoint writer (virtual path src/engine/snapshot.cpp)
  // may touch the filesystem without a finding.
  expect_clean("src/engine/snapshot.cpp");
}

TEST(lint, fixture_good_effect_cycle) {
  expect_clean("good_effect_cycle.cpp");
}

TEST(lint, fixture_good_effect_edges) {
  expect_clean("good_effect_edges.cpp");
}

TEST(lint, fixture_good_global_state) {
  expect_clean("src/core/good_global_state.cpp");
}

TEST(lint, effect_chain_names_every_hop) {
  // The fix-it contract for parallel-effect findings: the message prints
  // the full call chain, each hop as `name (file:line)`, terminating in the
  // concrete effect site. bad_effect_write.cpp routes the write through a
  // 3-deep chain, so all three hops plus the sink line must appear.
  const LintRun run = run_lint("--json " + fixture("bad_effect_write.cpp"));
  ASSERT_EQ(run.exit_code, 1);
  const json::Value doc = json::parse(run.output);
  const json::Value* findings = doc.find("findings");
  ASSERT_NE(findings, nullptr);
  ASSERT_EQ(findings->size(), 1u);
  const json::Value* message = findings->as_array()[0].find("message");
  ASSERT_NE(message, nullptr);
  const std::string text = message->as_string();
  for (const std::string hop : {"eff_write_entry (", "eff_write_mid (",
                                "eff_write_sink (",
                                "writes 'g_eff_write_total' at"}) {
    EXPECT_NE(text.find(hop), std::string::npos) << text;
  }
  EXPECT_NE(text.find("bad_effect_write.cpp:8"), std::string::npos) << text;
  EXPECT_NE(text.find(" -> "), std::string::npos) << text;
}

TEST(lint, fixture_guarded_by_violation) {
  expect_only_rule("tools/bad_guarded_by.cpp", "guarded-by-violation");
}

TEST(lint, fixture_good_guarded_by) {
  // The helper is only ever called under the lock, so H(glk_ok_raw) carries
  // the guard and the member is proved mutex-confined.
  expect_clean("tools/good_guarded_by.cpp");
}

TEST(lint, guarded_by_chain_names_the_unguarded_path) {
  // The violation message must print the interprocedural unguarded path:
  // the caller that reaches the access with no lock held, hop by hop.
  const LintRun run =
      run_lint("--json " + fixture("tools/bad_guarded_by.cpp"));
  ASSERT_EQ(run.exit_code, 1);
  const json::Value doc = json::parse(run.output);
  const json::Value* findings = doc.find("findings");
  ASSERT_NE(findings, nullptr);
  ASSERT_EQ(findings->size(), 1u);
  const json::Value* message = findings->as_array()[0].find("message");
  ASSERT_NE(message, nullptr);
  const std::string text = message->as_string();
  for (const std::string part :
       {"GlkStats::total_", "GlkStats::mutex_", "3 of 4",
        "unguarded path: peek (", "-> glk_raw ("}) {
    EXPECT_NE(text.find(part), std::string::npos) << text;
  }
}

TEST(lint, fixture_lock_order_cycle) {
  expect_only_rule("tools/bad_lock_order.cpp", "lock-order-cycle");
}

TEST(lint, fixture_good_lock_order) {
  expect_clean("tools/good_lock_order.cpp");
}

TEST(lint, lock_order_chain_names_the_call_edge) {
  // The seeded inversion's a->b edge only exists through lck_forward's call
  // into lck_grab_b; the finding must name both inverted acquisitions with
  // their witness locations.
  const LintRun run =
      run_lint("--json " + fixture("tools/bad_lock_order.cpp"));
  ASSERT_EQ(run.exit_code, 1);
  const json::Value doc = json::parse(run.output);
  const json::Value* findings = doc.find("findings");
  ASSERT_NE(findings, nullptr);
  ASSERT_GE(findings->size(), 1u);
  const json::Value* message = findings->as_array()[0].find("message");
  ASSERT_NE(message, nullptr);
  const std::string text = message->as_string();
  for (const std::string part :
       {"lock-order cycle", "g_lck_a", "g_lck_b",
        "'g_lck_b' acquired while holding 'g_lck_a'", "lck_grab_b (",
        "'g_lck_a' acquired while holding 'g_lck_b'", "lck_reverse ("}) {
    EXPECT_NE(text.find(part), std::string::npos) << text;
  }
}

TEST(lint, fixture_cv_wait_no_predicate) {
  expect_only_rule("tools/bad_cv_wait.cpp", "cv-wait-no-predicate");
}

TEST(lint, fixture_good_cv_wait) { expect_clean("tools/good_cv_wait.cpp"); }

TEST(lint, fixture_lock_held_blocking_call) {
  expect_only_rule("tools/bad_lock_held_blocking.cpp",
                   "lock-held-blocking-call");
}

TEST(lint, fixture_good_lock_held_blocking) {
  expect_clean("tools/good_lock_held_blocking.cpp");
}

TEST(lint, fixture_signal_unsafe_call) {
  expect_only_rule("tools/bad_signal_unsafe.cpp", "signal-unsafe-call");
}

TEST(lint, fixture_good_signal_unsafe) {
  // Atomic store + raw write(2): the whole handler tree stays on the
  // async-signal-safe allowlist.
  expect_clean("tools/good_signal_unsafe.cpp");
}

TEST(lint, signal_chain_names_every_hop_from_the_root) {
  // The handler is installed via sigaction; the malloc sits two hops down.
  // The finding must walk handler root -> helper -> unsafe call.
  const LintRun run =
      run_lint("--json " + fixture("tools/bad_signal_unsafe.cpp"));
  ASSERT_EQ(run.exit_code, 1);
  const json::Value doc = json::parse(run.output);
  const json::Value* findings = doc.find("findings");
  ASSERT_NE(findings, nullptr);
  ASSERT_GE(findings->size(), 1u);
  const json::Value* message = findings->as_array()[0].find("message");
  ASSERT_NE(message, nullptr);
  const std::string text = message->as_string();
  for (const std::string part :
       {"'malloc' inside the signal-handler call tree",
        "handler 'sig_on_alarm' (installed at", "-> sig_record ("}) {
    EXPECT_NE(text.find(part), std::string::npos) << text;
  }
}

TEST(lint, fixture_checkpoint_restore_symmetry) {
  expect_only_rule("src/engine/bad_ckpt_symmetry.cpp",
                   "checkpoint-restore-symmetry");
}

TEST(lint, fixture_good_checkpoint_restore_symmetry) {
  expect_clean("src/engine/good_ckpt_symmetry.cpp");
}

TEST(lint, fixture_layering) {
  // The fixture's virtual path (…/src/core/…) puts it in src/core, so its
  // radio include violates the layer DAG.
  expect_only_rule("src/core/bad_layering.cpp", "layering");
}

TEST(lint, fixture_include_cycle) {
  expect_only_rule("src/sim/bad_include_cycle.h", "include-cycle");
}

TEST(lint, fixture_line_splice_cannot_hide_a_banned_call) {
  // Phase-2 splicing happens before lexing: ra\<newline>nd() is rand().
  expect_only_rule("bad_line_splice.cpp", "ban-c-rand");
}

TEST(lint, fixture_good_allow_suppresses) { expect_clean("good_allow.cpp"); }

TEST(lint, fixture_good_clean) { expect_clean("good_clean.cpp"); }

TEST(lint, fixture_good_tokenizer_edges) {
  // Raw strings quoting banned identifiers, digit separators, a comment
  // line-splice, and UTF-8 prose must not confuse any rule.
  expect_clean("good_tokenizer_edges.cpp");
}

TEST(lint, every_bad_fixture_has_a_test) {
  // Walking the fixture dir keeps this suite honest: adding a fixture
  // without a matching expect_only_rule() call fails here.
  const std::set<std::string> covered = {
      "bad_random_device.cpp",    "bad_c_rand.cpp",
      "bad_wall_clock.cpp",       "bad_chrono_clock.cpp",
      "bad_raw_engine.cpp",       "bad_distribution.cpp",
      "bad_unordered_iteration.cpp", "bad_float_equality.cpp",
      "bad_printf_float.cpp",     "bad_allow_missing_justification.cpp",
      "bad_unknown_rule.cpp",     "bad_catch_swallow.cpp",
      "bad_unit_assign.cpp",      "bad_unit_call.cpp",
      "bad_unit_double_conversion.cpp", "bad_parallel_rng_capture.cpp",
      "bad_parallel_rng_stream.cpp", "src/core/bad_layering.cpp",
      "src/sim/bad_include_cycle.h", "bad_line_splice.cpp",
      "bench/bad_sample_hoard.cpp",
      "bad_effect_write.cpp",     "bad_effect_rng.cpp",
      "bad_effect_alias.cpp",     "bad_effect_unknown.cpp",
      "bad_effect_cycle.cpp",     "bad_effect_splice.cpp",
      "src/core/bad_global_state.cpp", "src/sim/bad_arena_escape.cpp",
      "src/engine/bad_engine_blocking.cpp", "src/engine/snapshot.cpp",
      "good_allow.cpp",           "good_clean.cpp",
      "good_tokenizer_edges.cpp", "good_effect_cycle.cpp",
      "good_effect_edges.cpp",    "src/core/good_global_state.cpp",
      "tools/bad_guarded_by.cpp", "tools/good_guarded_by.cpp",
      "tools/bad_lock_order.cpp", "tools/good_lock_order.cpp",
      "tools/bad_cv_wait.cpp",    "tools/good_cv_wait.cpp",
      "tools/bad_lock_held_blocking.cpp",
      "tools/good_lock_held_blocking.cpp",
      "tools/bad_signal_unsafe.cpp", "tools/good_signal_unsafe.cpp",
      "src/engine/bad_ckpt_symmetry.cpp",
      "src/engine/good_ckpt_symmetry.cpp"};
  const LintRun listing =
      run_lint("--json " + std::string(WILD5G_LINT_FIXTURES));
  const json::Value doc = json::parse(listing.output);
  const json::Value* scanned = doc.find("files_scanned");
  ASSERT_NE(scanned, nullptr);
  EXPECT_EQ(static_cast<std::size_t>(scanned->as_number()), covered.size())
      << "fixture added or removed without updating test_lint_fixtures.cpp";
}

TEST(lint, clean_tree) {
  // The repo's own sources must satisfy the determinism contract. This is
  // the same gate as ctest's lint.tree, asserted here with --json so a
  // regression names the offending rule in the failure message.
  const std::string root(WILD5G_SOURCE_ROOT);
  const LintRun run = run_lint("--json " + root + "/src " + root + "/bench " +
                               root + "/tools " + root + "/examples");
  EXPECT_EQ(run.exit_code, 0) << "tree has lint findings:\n" << run.output;
}

TEST(lint, full_tree_sweep_stays_inside_the_time_budget) {
  // Analyzer-scale gate: the concurrency fixpoints (held-set H(f), the
  // acquired-while-held closure, signal reachability) are all bounded, and
  // this test keeps them honest — a rule whose cost goes superlinear in the
  // call graph blows the budget here long before it times CI out. The budget
  // is deliberately generous (the sweep takes ~2s on an unloaded machine;
  // sanitizer builds and loaded runners are slower).
  const std::string root(WILD5G_SOURCE_ROOT);
  const auto start = std::chrono::steady_clock::now();
  const LintRun run = run_lint("--json " + root + "/src " + root + "/bench " +
                               root + "/tools " + root + "/examples");
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::seconds>(elapsed).count(),
            120)
      << "full-tree sweep blew the wall-clock budget";
}

TEST(lint, lexed_file_cache_prevents_re_lexing) {
  // src/core/rng.h is scanned once as part of the src/ walk and then named
  // again explicitly; the second load must come from the LexedFile cache.
  // The --json counters make the assertion exact: files_lexed counts cold
  // loads, lex_cache_hits counts avoided re-lexes.
  const std::string root(WILD5G_SOURCE_ROOT);
  const LintRun run =
      run_lint("--json " + root + "/src " + root + "/src/core/rng.h");
  EXPECT_EQ(run.exit_code, 0) << run.output;
  const json::Value doc = json::parse(run.output);
  const json::Value* lexed = doc.find("files_lexed");
  const json::Value* hits = doc.find("lex_cache_hits");
  ASSERT_NE(lexed, nullptr);
  ASSERT_NE(hits, nullptr);
  EXPECT_GE(hits->as_number(), 1) << "duplicate path was re-lexed";
  const json::Value* scanned = doc.find("files_scanned");
  ASSERT_NE(scanned, nullptr);
  EXPECT_EQ(lexed->as_number() + hits->as_number(), scanned->as_number());
}

TEST(lint, list_rules_covers_registry) {
  const LintRun run = run_lint("--list-rules");
  EXPECT_EQ(run.exit_code, 0);
  for (const std::string rule :
       {"ban-random-device", "ban-c-rand", "ban-wall-clock", "ban-raw-engine",
        "unordered-iteration", "float-equality", "printf-float",
        "catch-swallow", "bench-sample-hoard", "engine-blocking-call",
        "unit-mismatch-assign",
        "unit-mismatch-call",
        "unit-double-conversion", "parallel-rng-capture",
        "parallel-rng-stream", "parallel-effect-write", "parallel-effect-rng",
        "parallel-effect-alias", "parallel-effect-unknown",
        "global-mutable-state", "arena-escape", "layering",
        "include-cycle", "guarded-by-violation", "lock-order-cycle",
        "cv-wait-no-predicate", "lock-held-blocking-call",
        "signal-unsafe-call", "checkpoint-restore-symmetry"}) {
    EXPECT_NE(run.output.find(rule), std::string::npos) << rule;
  }
}

TEST(lint, list_rules_json_is_machine_readable) {
  // --list-rules --json is the contract --rules-doc and external tooling
  // build on: every rule carries an id, a family, and a summary.
  const LintRun run = run_lint("--list-rules --json");
  ASSERT_EQ(run.exit_code, 0);
  const json::Value doc = json::parse(run.output);
  const json::Value* rules = doc.find("rules");
  ASSERT_NE(rules, nullptr);
  EXPECT_GE(rules->size(), 24u) << "registry shrank below the PR-7 set";
  const json::Value* count = doc.find("count");
  ASSERT_NE(count, nullptr);
  EXPECT_EQ(static_cast<std::size_t>(count->as_number()), rules->size());
  std::set<std::string> families;
  for (const auto& rule : rules->as_array()) {
    const json::Value* id = rule.find("id");
    const json::Value* family = rule.find("family");
    const json::Value* summary = rule.find("summary");
    ASSERT_NE(id, nullptr);
    ASSERT_NE(family, nullptr);
    ASSERT_NE(summary, nullptr);
    EXPECT_FALSE(summary->as_string().empty()) << id->as_string();
    families.insert(family->as_string());
  }
  for (const std::string family :
       {"determinism", "units", "parallel", "effects", "concurrency",
        "layering", "hygiene", "meta"}) {
    EXPECT_EQ(families.count(family), 1u) << family;
  }
}

TEST(lint, list_rules_json_carries_effect_metadata) {
  // The effect-family rules advertise which lattice bit they gate on, so
  // downstream tooling (dashboards, the scheduler-refactor inventory) can
  // consume the effect system without parsing prose.
  const LintRun run = run_lint("--list-rules --json");
  ASSERT_EQ(run.exit_code, 0);
  const json::Value doc = json::parse(run.output);
  const json::Value* rules = doc.find("rules");
  ASSERT_NE(rules, nullptr);
  const std::map<std::string, std::string> expected = {
      {"parallel-effect-write", "writes_global"},
      {"parallel-effect-rng", "draws_rng"},
      {"parallel-effect-alias", "mutates_param"},
      {"parallel-effect-unknown", "unknown"},
      {"global-mutable-state", "writes_global"},
      {"arena-escape", "allocates"}};
  std::size_t seen = 0;
  for (const auto& rule : rules->as_array()) {
    const json::Value* id = rule.find("id");
    ASSERT_NE(id, nullptr);
    const auto want = expected.find(id->as_string());
    if (want == expected.end()) continue;
    ++seen;
    const json::Value* effects = rule.find("effects");
    ASSERT_NE(effects, nullptr) << id->as_string();
    EXPECT_EQ(effects->as_string(), want->second) << id->as_string();
  }
  EXPECT_EQ(seen, expected.size());
}

TEST(lint, baseline_suppresses_known_findings) {
  // The ratchet: a SARIF log captured from a dirty tree acts as a baseline;
  // re-linting the same tree against it exits 0, because every finding's
  // fingerprint (rule + file + normalized source line) matches.
  const std::string baseline =
      ::testing::TempDir() + "/wild5g_lint_baseline.sarif";
  const LintRun capture =
      run_lint("--sarif " + baseline + " " + fixture("bad_c_rand.cpp"));
  ASSERT_EQ(capture.exit_code, 1);
  const LintRun gated = run_lint("--baseline " + baseline + " --json " +
                                 fixture("bad_c_rand.cpp"));
  EXPECT_EQ(gated.exit_code, 0) << gated.output;
  const json::Value doc = json::parse(gated.output);
  const json::Value* count = doc.find("count");
  ASSERT_NE(count, nullptr);
  EXPECT_EQ(count->as_number(), 0);
}

TEST(lint, baseline_still_fails_on_new_findings) {
  // A baseline from a *different* file suppresses nothing here: the
  // fingerprints don't match, so the findings survive the ratchet.
  const std::string baseline =
      ::testing::TempDir() + "/wild5g_lint_other_baseline.sarif";
  const LintRun capture =
      run_lint("--sarif " + baseline + " " + fixture("bad_c_rand.cpp"));
  ASSERT_EQ(capture.exit_code, 1);
  const LintRun gated = run_lint("--baseline " + baseline + " --json " +
                                 fixture("bad_wall_clock.cpp"));
  EXPECT_EQ(gated.exit_code, 1) << gated.output;
}

TEST(lint, baseline_rejects_unreadable_file) {
  const LintRun run = run_lint("--baseline /nonexistent/baseline.sarif " +
                               fixture("good_clean.cpp"));
  EXPECT_EQ(run.exit_code, 2);
}

TEST(lint, sarif_output_matches_code_scanning_shape) {
  // The SARIF log must carry the 2.1.0 fields GitHub code scanning requires:
  // version, runs[0].tool.driver.{name,rules}, and per-result ruleId/level/
  // message.text/locations[0].physicalLocation with a uri and a 1-based
  // startLine.
  const std::string sarif_path =
      ::testing::TempDir() + "/wild5g_lint_fixture.sarif";
  const LintRun run =
      run_lint("--sarif " + sarif_path + " " + fixture("bad_c_rand.cpp"));
  EXPECT_EQ(run.exit_code, 1);
  std::ifstream in(sarif_path);
  ASSERT_TRUE(in.good()) << sarif_path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  const json::Value doc = json::parse(buffer.str());
  const json::Value* version = doc.find("version");
  ASSERT_NE(version, nullptr);
  EXPECT_EQ(version->as_string(), "2.1.0");
  const json::Value* runs = doc.find("runs");
  ASSERT_NE(runs, nullptr);
  ASSERT_EQ(runs->size(), 1u);
  const json::Value& the_run = runs->as_array()[0];
  const json::Value* tool = the_run.find("tool");
  ASSERT_NE(tool, nullptr);
  const json::Value* driver = tool->find("driver");
  ASSERT_NE(driver, nullptr);
  const json::Value* name = driver->find("name");
  ASSERT_NE(name, nullptr);
  EXPECT_EQ(name->as_string(), "wild5g-lint");
  const json::Value* rules = driver->find("rules");
  ASSERT_NE(rules, nullptr);
  EXPECT_GE(rules->size(), 17u);
  const json::Value* results = the_run.find("results");
  ASSERT_NE(results, nullptr);
  ASSERT_GE(results->size(), 1u);
  for (const auto& result : results->as_array()) {
    const json::Value* rule_id = result.find("ruleId");
    ASSERT_NE(rule_id, nullptr);
    EXPECT_EQ(rule_id->as_string(), "ban-c-rand");
    const json::Value* level = result.find("level");
    ASSERT_NE(level, nullptr);
    EXPECT_EQ(level->as_string(), "error");
    const json::Value* message = result.find("message");
    ASSERT_NE(message, nullptr);
    ASSERT_NE(message->find("text"), nullptr);
    const json::Value* locations = result.find("locations");
    ASSERT_NE(locations, nullptr);
    ASSERT_EQ(locations->size(), 1u);
    const json::Value* physical =
        locations->as_array()[0].find("physicalLocation");
    ASSERT_NE(physical, nullptr);
    const json::Value* artifact = physical->find("artifactLocation");
    ASSERT_NE(artifact, nullptr);
    ASSERT_NE(artifact->find("uri"), nullptr);
    const json::Value* region = physical->find("region");
    ASSERT_NE(region, nullptr);
    const json::Value* start_line = region->find("startLine");
    ASSERT_NE(start_line, nullptr);
    EXPECT_GE(start_line->as_number(), 1);
  }
}

TEST(lint, rules_doc_is_fresh) {
  // docs/LINT_RULES.md is generated from the registry; this gate fails when
  // a rule is added or reworded without regenerating the doc.
  const LintRun run = run_lint("--rules-doc");
  ASSERT_EQ(run.exit_code, 0);
  std::ifstream in(WILD5G_LINT_RULES_DOC);
  ASSERT_TRUE(in.good())
      << "docs/LINT_RULES.md missing; regenerate with wild5g_lint "
         "--rules-doc";
  std::stringstream committed;
  committed << in.rdbuf();
  EXPECT_EQ(committed.str(), run.output)
      << "docs/LINT_RULES.md is stale; regenerate with:\n"
         "  ./build/tools/wild5g_lint --rules-doc > docs/LINT_RULES.md";
}

}  // namespace
