// Tests for tools/wild5g_lint: every fixture in tests/lint_fixtures/ must
// trip exactly its intended rule, justified suppressions must silence their
// finding, and the real tree (src/, bench/, tools/, examples/) must lint
// clean — that last assertion is the determinism contract the golden-metrics
// harness rests on.
//
// The linter binary path and fixture directory come in as compile
// definitions (see tests/CMakeLists.txt); runs go through popen so we
// exercise the actual CLI, --json output, and exit codes end to end.
#include <gtest/gtest.h>
#include <sys/wait.h>

#include <cstdio>
#include <set>
#include <string>

#include "core/json.h"

namespace {

namespace json = wild5g::json;

struct LintRun {
  int exit_code = -1;
  std::string output;
};

LintRun run_lint(const std::string& args) {
  const std::string command =
      std::string(WILD5G_LINT_BIN) + " " + args + " 2>/dev/null";
  FILE* pipe = popen(command.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << "failed to launch: " << command;
  LintRun run;
  if (pipe == nullptr) return run;
  char buffer[4096];
  std::size_t n = 0;
  while ((n = fread(buffer, 1, sizeof(buffer), pipe)) > 0) {
    run.output.append(buffer, n);
  }
  const int status = pclose(pipe);
  run.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return run;
}

std::string fixture(const std::string& name) {
  return std::string(WILD5G_LINT_FIXTURES) + "/" + name;
}

/// Runs the linter on one fixture and asserts that it exits 1 and that every
/// finding carries exactly the expected rule (counts may exceed one, rules
/// may not differ — a fixture that trips a neighboring rule is a test bug).
void expect_only_rule(const std::string& name, const std::string& rule) {
  const LintRun run = run_lint("--json " + fixture(name));
  ASSERT_EQ(run.exit_code, 1) << name << " output:\n" << run.output;
  const json::Value doc = json::parse(run.output);
  const json::Value* findings = doc.find("findings");
  ASSERT_NE(findings, nullptr);
  ASSERT_GE(findings->size(), 1u) << name;
  for (const auto& entry : findings->as_array()) {
    const json::Value* got = entry.find("rule");
    ASSERT_NE(got, nullptr);
    EXPECT_EQ(got->as_string(), rule)
        << name << " tripped a rule it should not have:\n"
        << run.output;
    const json::Value* line = entry.find("line");
    ASSERT_NE(line, nullptr);
    EXPECT_GT(line->as_number(), 0) << name;
  }
}

void expect_clean(const std::string& name) {
  const LintRun run = run_lint("--json " + fixture(name));
  EXPECT_EQ(run.exit_code, 0) << name << " output:\n" << run.output;
  const json::Value doc = json::parse(run.output);
  const json::Value* count = doc.find("count");
  ASSERT_NE(count, nullptr);
  EXPECT_EQ(count->as_number(), 0) << name;
}

TEST(lint, fixture_ban_random_device) {
  expect_only_rule("bad_random_device.cpp", "ban-random-device");
}

TEST(lint, fixture_ban_c_rand) {
  expect_only_rule("bad_c_rand.cpp", "ban-c-rand");
}

TEST(lint, fixture_ban_wall_clock_time) {
  expect_only_rule("bad_wall_clock.cpp", "ban-wall-clock");
}

TEST(lint, fixture_ban_wall_clock_chrono) {
  expect_only_rule("bad_chrono_clock.cpp", "ban-wall-clock");
}

TEST(lint, fixture_ban_raw_engine) {
  expect_only_rule("bad_raw_engine.cpp", "ban-raw-engine");
}

TEST(lint, fixture_ban_raw_distribution) {
  expect_only_rule("bad_distribution.cpp", "ban-raw-engine");
}

TEST(lint, fixture_unordered_iteration) {
  expect_only_rule("bad_unordered_iteration.cpp", "unordered-iteration");
}

TEST(lint, fixture_float_equality) {
  expect_only_rule("bad_float_equality.cpp", "float-equality");
}

TEST(lint, fixture_printf_float) {
  expect_only_rule("bad_printf_float.cpp", "printf-float");
}

TEST(lint, fixture_catch_swallow) {
  expect_only_rule("bad_catch_swallow.cpp", "catch-swallow");
}

TEST(lint, fixture_allow_needs_justification) {
  expect_only_rule("bad_allow_missing_justification.cpp",
                   "allow-needs-justification");
}

TEST(lint, fixture_unknown_rule) {
  expect_only_rule("bad_unknown_rule.cpp", "unknown-rule");
}

TEST(lint, fixture_good_allow_suppresses) { expect_clean("good_allow.cpp"); }

TEST(lint, fixture_good_clean) { expect_clean("good_clean.cpp"); }

TEST(lint, every_bad_fixture_has_a_test) {
  // Walking the fixture dir keeps this suite honest: adding a fixture
  // without a matching expect_only_rule() call fails here.
  const std::set<std::string> covered = {
      "bad_random_device.cpp",    "bad_c_rand.cpp",
      "bad_wall_clock.cpp",       "bad_chrono_clock.cpp",
      "bad_raw_engine.cpp",       "bad_distribution.cpp",
      "bad_unordered_iteration.cpp", "bad_float_equality.cpp",
      "bad_printf_float.cpp",     "bad_allow_missing_justification.cpp",
      "bad_unknown_rule.cpp",     "bad_catch_swallow.cpp",
      "good_allow.cpp",           "good_clean.cpp"};
  const LintRun listing =
      run_lint("--json " + std::string(WILD5G_LINT_FIXTURES));
  const json::Value doc = json::parse(listing.output);
  const json::Value* scanned = doc.find("files_scanned");
  ASSERT_NE(scanned, nullptr);
  EXPECT_EQ(static_cast<std::size_t>(scanned->as_number()), covered.size())
      << "fixture added or removed without updating test_lint_fixtures.cpp";
}

TEST(lint, clean_tree) {
  // The repo's own sources must satisfy the determinism contract. This is
  // the same gate as ctest's lint.tree, asserted here with --json so a
  // regression names the offending rule in the failure message.
  const std::string root(WILD5G_SOURCE_ROOT);
  const LintRun run = run_lint("--json " + root + "/src " + root + "/bench " +
                               root + "/tools " + root + "/examples");
  EXPECT_EQ(run.exit_code, 0) << "tree has lint findings:\n" << run.output;
}

TEST(lint, list_rules_covers_registry) {
  const LintRun run = run_lint("--list-rules");
  EXPECT_EQ(run.exit_code, 0);
  for (const std::string rule :
       {"ban-random-device", "ban-c-rand", "ban-wall-clock", "ban-raw-engine",
        "unordered-iteration", "float-equality", "printf-float",
        "catch-swallow"}) {
    EXPECT_NE(run.output.find(rule), std::string::npos) << rule;
  }
}

}  // namespace
