// Tests for the radio channel model: path loss, RSRP, link capacity, and
// the stochastic channel process.
#include "radio/channel.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/error.h"
#include "core/rng.h"
#include "radio/ue.h"

namespace wr = wild5g::radio;
using wr::Band;
using wr::Carrier;
using wr::DeploymentMode;
using wr::Direction;
using wr::NetworkConfig;

namespace {
const NetworkConfig kVzMmWave{Carrier::kVerizon, Band::kNrMmWave,
                              DeploymentMode::kNsa};
const NetworkConfig kVzLte{Carrier::kVerizon, Band::kLte,
                           DeploymentMode::kNsa};
const NetworkConfig kTmNsaLb{Carrier::kTMobile, Band::kNrLowBand,
                             DeploymentMode::kNsa};
const NetworkConfig kTmSaLb{Carrier::kTMobile, Band::kNrLowBand,
                            DeploymentMode::kSa};
}  // namespace

// Property: path loss is monotonically increasing in distance on all bands.
class PathLossMonotone : public ::testing::TestWithParam<Band> {};

TEST_P(PathLossMonotone, IncreasesWithDistance) {
  const Band band = GetParam();
  double prev = wr::path_loss_db(band, 1.0);
  for (double d = 10.0; d <= 10000.0; d *= 1.7) {
    const double pl = wr::path_loss_db(band, d);
    EXPECT_GT(pl, prev);
    prev = pl;
  }
}

INSTANTIATE_TEST_SUITE_P(AllBands, PathLossMonotone,
                         ::testing::Values(Band::kLte, Band::kNrLowBand,
                                           Band::kNrMidBand,
                                           Band::kNrMmWave));

TEST(Channel, MmWavePathLossHarsherThanLowBand) {
  // At equal distance, 28 GHz loses far more than 600 MHz.
  EXPECT_GT(wr::path_loss_db(Band::kNrMmWave, 500.0),
            wr::path_loss_db(Band::kNrLowBand, 500.0) + 10.0);
}

TEST(Channel, RsrpClampedToReportableRange) {
  EXPECT_LE(wr::rsrp_dbm(Band::kNrMmWave, 1.0), -60.0);
  EXPECT_GE(wr::rsrp_dbm(Band::kNrMmWave, 1e9, 80.0), -140.0);
}

TEST(Channel, MmWaveRsrpRealisticAtTypicalRange) {
  // Stationary LoS at ~100-200 m should land in the Fig. 13 range.
  const double rsrp_100 = wr::rsrp_dbm(Band::kNrMmWave, 100.0);
  const double rsrp_200 = wr::rsrp_dbm(Band::kNrMmWave, 200.0);
  EXPECT_GT(rsrp_100, -85.0);
  EXPECT_LT(rsrp_100, -65.0);
  EXPECT_LT(rsrp_200, rsrp_100);
}

TEST(Channel, BlockageDropsRsrpDeep) {
  const double clear = wr::rsrp_dbm(Band::kNrMmWave, 120.0);
  const double blocked = wr::rsrp_dbm(Band::kNrMmWave, 120.0, 25.0);
  EXPECT_NEAR(clear - blocked, 25.0, 1e-9);
}

TEST(Capacity, S20UMmWaveDownlinkNearPaperPeak) {
  // Sec. 3.2: S20U exceeds 3 Gbps over mmWave with 8CC.
  const double cap = wr::link_capacity_mbps(kVzMmWave, wr::galaxy_s20u(),
                                            Direction::kDownlink, -76.0);
  EXPECT_GT(cap, 3000.0);
  EXPECT_LT(cap, 3600.0);
}

TEST(Capacity, Pixel5AndS10Around2Gbps) {
  // Appendix A.1: 4CC devices peak around 2-2.2 Gbps.
  const double px5 = wr::link_capacity_mbps(kVzMmWave, wr::pixel5(),
                                            Direction::kDownlink, -76.0);
  const double s10 = wr::link_capacity_mbps(kVzMmWave, wr::galaxy_s10(),
                                            Direction::kDownlink, -76.0);
  EXPECT_GT(px5, 1700.0);
  EXPECT_LT(px5, 2300.0);
  EXPECT_GT(s10, 1700.0);
  EXPECT_LT(s10, 2100.0);
}

TEST(Capacity, S20UMmWaveUplinkNear220) {
  // Sec. 3.2: uplink ~220 Mbps.
  const double cap = wr::link_capacity_mbps(kVzMmWave, wr::galaxy_s20u(),
                                            Direction::kUplink, -76.0);
  EXPECT_GT(cap, 190.0);
  EXPECT_LT(cap, 245.0);
}

TEST(Capacity, NsaLowBandAroundPaperRange) {
  const double dl = wr::link_capacity_mbps(kTmNsaLb, wr::galaxy_s20u(),
                                           Direction::kDownlink, -82.0);
  const double ul = wr::link_capacity_mbps(kTmNsaLb, wr::galaxy_s20u(),
                                           Direction::kUplink, -82.0);
  EXPECT_GT(dl, 140.0);  // Fig. 6 multi-conn reaches ~150-200
  EXPECT_LT(dl, 230.0);
  EXPECT_GT(ul, 70.0);   // Fig. 7 reaches ~100
  EXPECT_LT(ul, 120.0);
}

TEST(Capacity, SaRoughlyHalfOfNsaLowBand) {
  // Sec. 3.2: SA achieves about half the NSA low-band performance.
  for (const auto direction : {Direction::kDownlink, Direction::kUplink}) {
    const double nsa = wr::link_capacity_mbps(kTmNsaLb, wr::galaxy_s20u(),
                                              direction, -82.0);
    const double sa = wr::link_capacity_mbps(kTmSaLb, wr::galaxy_s20u(),
                                             direction, -82.0);
    EXPECT_GT(sa, 0.30 * nsa);
    EXPECT_LT(sa, 0.65 * nsa);
  }
}

TEST(Capacity, DegradesWithWeakSignal) {
  const auto ue = wr::galaxy_s20u();
  double prev = 1e18;
  for (double rsrp = -70.0; rsrp >= -115.0; rsrp -= 5.0) {
    const double cap =
        wr::link_capacity_mbps(kVzMmWave, ue, Direction::kDownlink, rsrp);
    EXPECT_LE(cap, prev);
    prev = cap;
  }
  // Deep blockage must collapse capacity by an order of magnitude.
  const double good =
      wr::link_capacity_mbps(kVzMmWave, ue, Direction::kDownlink, -76.0);
  const double blocked =
      wr::link_capacity_mbps(kVzMmWave, ue, Direction::kDownlink, -108.0);
  EXPECT_LT(blocked, good * 0.2);
}

TEST(Capacity, NeverExceedsUeCeiling) {
  const auto ue = wr::pixel5();
  const double cap =
      wr::link_capacity_mbps(kVzMmWave, ue, Direction::kDownlink, -60.0);
  EXPECT_LE(cap, ue.max_dl_mbps);
}

TEST(Latency, BandOrderingMatchesFig2) {
  // mmWave < low-band (+6-8 ms) < LTE (further +6-15 ms).
  const double mm = wr::access_latency_ms(kVzMmWave);
  const double lb = wr::access_latency_ms(kTmNsaLb);
  const double lte = wr::access_latency_ms(kVzLte);
  EXPECT_LT(mm, lb);
  EXPECT_LT(lb, lte);
  EXPECT_NEAR(lb - mm, 7.0, 2.0);
  EXPECT_NEAR(lte - lb, 6.6, 4.0);
}

TEST(ChannelProcess, DeterministicInSeed) {
  const auto config = wr::default_channel_process(Band::kNrMmWave);
  wr::ChannelProcess a(config, wild5g::Rng(5));
  wr::ChannelProcess b(config, wild5g::Rng(5));
  for (int i = 0; i < 200; ++i) {
    EXPECT_DOUBLE_EQ(a.step(0.1).rsrp_dbm, b.step(0.1).rsrp_dbm);
  }
}

TEST(ChannelProcess, MmWaveSeesBlockages) {
  auto config = wr::default_channel_process(Band::kNrMmWave);
  wr::ChannelProcess process(config, wild5g::Rng(6));
  int blocked = 0;
  const int steps = 6000;  // 10 minutes at 10 Hz
  for (int i = 0; i < steps; ++i) {
    if (process.step(0.1).blocked) ++blocked;
  }
  EXPECT_GT(blocked, steps / 100);  // obstructed a nontrivial share
  EXPECT_LT(blocked, steps / 2);
}

TEST(ChannelProcess, LowBandHasNoBlockage) {
  auto config = wr::default_channel_process(Band::kNrLowBand);
  wr::ChannelProcess process(config, wild5g::Rng(7));
  for (int i = 0; i < 2000; ++i) {
    EXPECT_FALSE(process.step(0.1).blocked);
  }
}

TEST(ChannelProcess, RsrpStaysInReportedRange) {
  for (const Band band : {Band::kNrMmWave, Band::kNrLowBand, Band::kLte}) {
    wr::ChannelProcess process(wr::default_channel_process(band),
                               wild5g::Rng(8));
    for (int i = 0; i < 3000; ++i) {
      const auto s = process.step(0.1);
      EXPECT_LE(s.rsrp_dbm, -60.0);
      EXPECT_GE(s.rsrp_dbm, -140.0);
    }
  }
}

TEST(Types, ToStringRoundtripSanity) {
  EXPECT_EQ(wr::to_string(kVzMmWave), "Verizon NSA 5G (mmWave)");
  EXPECT_EQ(wr::to_string(kTmSaLb), "T-Mobile SA 5G (low-band)");
  EXPECT_EQ(wr::to_string(kVzLte), "Verizon 4G");
}
