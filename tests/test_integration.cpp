// Cross-module integration tests: the paper's end-to-end methodology chains.
#include <gtest/gtest.h>

#include "abr/algorithms.h"
#include "abr/video.h"
#include "core/rng.h"
#include "core/stats.h"
#include "net/speedtest.h"
#include "power/fitting.h"
#include "power/monitor.h"
#include "power/waveform.h"
#include "radio/ue.h"
#include "rrc/probe.h"
#include "traces/traces.h"

using wild5g::Rng;

// Methodology chain 1 (Sec. 4.1-4.2): run RRC-Probe against the simulated
// network, infer timers, then confirm them with the power monitor, exactly
// as the paper does ("We also confirm the timers using Monsoon").
TEST(Integration, ProbeInferenceConfirmedByPowerMonitor) {
  const auto profile = wild5g::rrc::profile_by_name("Verizon NSA mmWave");
  Rng rng(1);
  const auto samples = wild5g::rrc::run_probe(
      profile.config, wild5g::rrc::schedule_for(profile.config), rng);
  const auto inferred = wild5g::rrc::infer_rrc_parameters(samples);

  // Power confirmation: synthesize a single-burst waveform and find where
  // the tail power collapses to the idle floor.
  const std::vector<wild5g::rrc::ActivityBurst> bursts = {
      {2000.0, 6000.0, 400.0, 10.0}};
  wild5g::power::WaveformSynthesizer synth(
      profile, wild5g::power::DevicePowerProfile::s20u(), 1000.0);
  Rng wave_rng(2);
  const auto trace = synth.synthesize(
      wild5g::rrc::build_timeline(profile.config, bursts, 40000.0), wave_rng);
  // Scan 1 s windows after the burst for the drop below 30% of tail power.
  double drop_at_s = -1.0;
  for (double t = 7.0; t < 39.0; t += 0.5) {
    if (trace.average_mw(t, t + 1.0) < 0.3 * profile.power.tail_mw) {
      drop_at_s = t;
      break;
    }
  }
  ASSERT_GT(drop_at_s, 0.0);
  const double tail_from_power_ms = (drop_at_s - 6.0) * 1000.0;
  // The two independent estimates agree with each other and the config.
  EXPECT_NEAR(tail_from_power_ms, profile.config.inactivity_timer_ms, 1200.0);
  EXPECT_NEAR(inferred.tail_timer_ms, tail_from_power_ms, 1500.0);
}

// Methodology chain 2 (Sec. 4.5 "Validation on Real Applications"): fit the
// TH+SS power model on a walking campaign, then check its energy estimate on
// an application workload against the hardware-monitor ground truth.
TEST(Integration, PowerModelValidatesOnApplicationWorkload) {
  wild5g::power::WalkingCampaignConfig campaign;
  campaign.network = {wild5g::radio::Carrier::kVerizon,
                      wild5g::radio::Band::kNrMmWave,
                      wild5g::radio::DeploymentMode::kNsa};
  campaign.ue = wild5g::radio::galaxy_s20u();
  const auto device = wild5g::power::DevicePowerProfile::s20u();
  Rng rng(3);
  const auto samples =
      wild5g::power::run_walking_campaign(campaign, device, rng);
  wild5g::power::PowerModelFit fit(
      wild5g::power::FeatureSet::kThroughputAndSignal);
  Rng split_rng(4);
  fit.fit(samples, split_rng);

  // "Application" workload: a video-like on/off transfer pattern.
  std::vector<wild5g::power::PowerModelFit::UsageSlot> usage;
  Rng wl(5);
  double truth_j = 0.0;
  for (int s = 0; s < 120; ++s) {
    const bool active = s % 10 < 6;
    const double dl = active ? wl.uniform(100.0, 900.0) : wl.uniform(0.0, 5.0);
    const double rsrp = wl.uniform(-95.0, -75.0);
    usage.push_back({dl, dl * 0.03, rsrp, 1.0});
    truth_j += device.transfer_power_mw(wild5g::power::RailKey::kNsaMmWave,
                                        dl, dl * 0.03, rsrp) /
               1000.0;
  }
  const double estimated_j = fit.estimate_energy_j(usage);
  // Paper reports 3.7% / 2.1% relative error on video/web; allow 8%.
  EXPECT_NEAR(estimated_j, truth_j, 0.08 * truth_j);
}

// Methodology chain 3 (Sec. 3): the same speedtest campaign reproduces both
// the latency-distance law and the single-vs-multi connection gap.
TEST(Integration, SpeedtestCampaignShapes) {
  wild5g::net::SpeedtestConfig config;
  config.network = {wild5g::radio::Carrier::kVerizon,
                    wild5g::radio::Band::kNrMmWave,
                    wild5g::radio::DeploymentMode::kNsa};
  config.ue = wild5g::radio::galaxy_s20u();
  config.ue_location = wild5g::geo::minneapolis().point;
  wild5g::net::SpeedtestHarness harness(config);

  Rng rng(6);
  std::vector<double> distances;
  std::vector<double> rtts;
  double single_near = 0.0;
  double single_far = 0.0;
  for (const auto& server : wild5g::net::carrier_server_pool()) {
    const double d = wild5g::geo::haversine_km(config.ue_location,
                                               server.location);
    const auto result =
        harness.peak_of(server, wild5g::net::ConnectionMode::kSingle, 3, rng);
    distances.push_back(d);
    rtts.push_back(result.rtt_ms);
    if (d < 100.0) single_near = result.downlink_mbps;
    if (d > 2200.0) single_far = result.downlink_mbps;
  }
  const auto fit = wild5g::stats::linear_fit(distances, rtts);
  EXPECT_NEAR(fit.slope, 0.034, 0.004);  // ms per km
  EXPECT_GT(fit.r_squared, 0.95);
  ASSERT_GT(single_near, 0.0);
  ASSERT_GT(single_far, 0.0);
  EXPECT_GT(single_near, 1.5 * single_far);
}

// Methodology chain 4 (Sec. 5): ABR evaluation end to end on generated
// traces — robustMPC holds QoE on 5G while a throughput-chasing baseline
// loses it to stalls.
TEST(Integration, AbrPipelineOnGeneratedTraces) {
  Rng rng(7);
  auto trace_config = wild5g::traces::lumos5g_mmwave_config();
  trace_config.count = 50;
  const auto traces = wild5g::traces::generate_traces(trace_config, rng);
  const auto video = wild5g::abr::video_ladder_5g();
  wild5g::abr::SessionOptions options;
  options.chunk_count = 40;

  wild5g::abr::HarmonicMeanPredictor predictor_fast;
  wild5g::abr::HarmonicMeanPredictor predictor_robust;
  wild5g::abr::ModelPredictiveAbr fast(
      wild5g::abr::ModelPredictiveAbr::Variant::kFast, predictor_fast);
  wild5g::abr::ModelPredictiveAbr robust(
      wild5g::abr::ModelPredictiveAbr::Variant::kRobust, predictor_robust);

  const auto qoe_robust =
      wild5g::abr::evaluate_on_traces(video, traces, robust, options);
  const auto qoe_fast =
      wild5g::abr::evaluate_on_traces(video, traces, fast, options);

  // The paper's 5G ordering: fastMPC chases bitrate and stalls much more;
  // robustMPC trades a little bitrate for far fewer stalls and better QoE.
  EXPECT_LT(qoe_robust.mean_stall_percent,
            0.9 * qoe_fast.mean_stall_percent);
  EXPECT_LE(qoe_robust.mean_normalized_bitrate,
            qoe_fast.mean_normalized_bitrate + 0.02);
  EXPECT_GT(qoe_robust.mean_normalized_qoe, qoe_fast.mean_normalized_qoe);
}

// Software-monitor chain (Sec. 4.6): raw software energy underestimates the
// hardware value; calibration closes the gap.
TEST(Integration, SoftwareMonitorEndToEnd) {
  const auto profile = wild5g::rrc::profile_by_name("T-Mobile SA low-band");
  std::vector<wild5g::rrc::ActivityBurst> bursts;
  for (double t = 1000.0; t < 100000.0; t += 15000.0) {
    bursts.push_back({t, t + 5000.0, 80.0, 3.0});
  }
  wild5g::power::WaveformSynthesizer synth(
      profile, wild5g::power::DevicePowerProfile::s20u(), 1000.0);
  Rng rng(8);
  const auto waveform = synth.synthesize(
      wild5g::rrc::build_timeline(profile.config, bursts, 110000.0), rng);

  const auto hw = wild5g::power::MonsoonMonitor::per_second_mw(waveform);
  wild5g::power::SoftwareMonitor sw(
      wild5g::power::default_software_monitor(10.0));
  Rng sw_rng(9);
  auto readings = sw.per_second_mw(waveform, sw_rng);
  readings.resize(hw.size());

  const double hw_energy = wild5g::stats::mean(hw);
  const double sw_energy = wild5g::stats::mean(readings);
  EXPECT_LT(sw_energy, hw_energy);

  wild5g::power::SoftwareCalibration calibration;
  calibration.fit(readings, hw);
  const auto calibrated = calibration.calibrate_all(readings);
  EXPECT_NEAR(wild5g::stats::mean(calibrated), hw_energy, 0.05 * hw_energy);
}
