// Unit and property tests for wild5g::stats.
#include "core/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/error.h"
#include "core/rng.h"

namespace ws = wild5g::stats;

TEST(Stats, MeanOfConstantSample) {
  const std::vector<double> xs{4.0, 4.0, 4.0};
  EXPECT_DOUBLE_EQ(ws::mean(xs), 4.0);
}

TEST(Stats, MeanThrowsOnEmpty) {
  EXPECT_THROW((void)ws::mean({}), wild5g::Error);
}

TEST(Stats, StddevKnownValue) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_NEAR(ws::stddev(xs), 2.138, 1e-3);
}

TEST(Stats, StddevOfSingletonIsZero) {
  const std::vector<double> xs{3.0};
  EXPECT_DOUBLE_EQ(ws::stddev(xs), 0.0);
}

TEST(Stats, StddevThrowsOnEmpty) {
  // Same contract as mean(): an empty sample is a caller bug, not 0.0.
  EXPECT_THROW((void)ws::stddev({}), wild5g::Error);
}

TEST(Stats, HarmonicMeanKnownValue) {
  const std::vector<double> xs{1.0, 2.0, 4.0};
  EXPECT_NEAR(ws::harmonic_mean(xs), 3.0 / (1.0 + 0.5 + 0.25), 1e-12);
}

TEST(Stats, HarmonicMeanRejectsNonPositive) {
  const std::vector<double> xs{1.0, 0.0};
  EXPECT_THROW((void)ws::harmonic_mean(xs), wild5g::Error);
}

TEST(Stats, HarmonicMeanDominatedBySmallValues) {
  const std::vector<double> xs{0.1, 100.0, 100.0, 100.0};
  EXPECT_LT(ws::harmonic_mean(xs), 1.0);
}

TEST(Stats, PercentileEndpoints) {
  const std::vector<double> xs{5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(ws::percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(ws::percentile(xs, 100.0), 5.0);
  EXPECT_DOUBLE_EQ(ws::median(xs), 3.0);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> xs{0.0, 10.0};
  EXPECT_DOUBLE_EQ(ws::percentile(xs, 25.0), 2.5);
  EXPECT_DOUBLE_EQ(ws::p95(xs), 9.5);
}

TEST(Stats, PercentileRejectsOutOfRangeP) {
  const std::vector<double> xs{1.0};
  EXPECT_THROW((void)ws::percentile(xs, -1.0), wild5g::Error);
  EXPECT_THROW((void)ws::percentile(xs, 101.0), wild5g::Error);
}

TEST(Stats, PercentileOfSingleElementIsThatElementForAllP) {
  const std::vector<double> xs{42.0};
  for (double p = 0.0; p <= 100.0; p += 12.5) {
    EXPECT_DOUBLE_EQ(ws::percentile(xs, p), 42.0) << "p=" << p;
  }
}

TEST(Stats, PercentileThrowsOnEmpty) {
  EXPECT_THROW((void)ws::percentile({}, 50.0), wild5g::Error);
  EXPECT_THROW((void)ws::median({}), wild5g::Error);
}

TEST(Stats, EmpiricalCdfIsMonotone) {
  wild5g::Rng rng(7);
  std::vector<double> xs;
  for (int i = 0; i < 200; ++i) xs.push_back(rng.normal(0.0, 3.0));
  const auto cdf = ws::empirical_cdf(xs);
  ASSERT_EQ(cdf.size(), xs.size());
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i].value, cdf[i - 1].value);
    EXPECT_GT(cdf[i].cumulative_probability,
              cdf[i - 1].cumulative_probability);
  }
  EXPECT_DOUBLE_EQ(cdf.back().cumulative_probability, 1.0);
}

TEST(Stats, EmpiricalCdfSingleElement) {
  const std::vector<double> xs{2.5};
  const auto cdf = ws::empirical_cdf(xs);
  ASSERT_EQ(cdf.size(), 1u);
  EXPECT_DOUBLE_EQ(cdf[0].value, 2.5);
  EXPECT_DOUBLE_EQ(cdf[0].cumulative_probability, 1.0);
}

TEST(Stats, EmpiricalCdfThrowsOnEmpty) {
  EXPECT_THROW((void)ws::empirical_cdf({}), wild5g::Error);
}

TEST(Stats, EmpiricalCdfTiedValuesKeepDistinctSteps) {
  // Duplicates get one point each, with probability stepping by 1/n — the
  // convention the CDF figure emitters (Figs. 3-7) rely on.
  const std::vector<double> xs{1.0, 1.0, 2.0};
  const auto cdf = ws::empirical_cdf(xs);
  ASSERT_EQ(cdf.size(), 3u);
  EXPECT_DOUBLE_EQ(cdf[0].cumulative_probability, 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(cdf[1].cumulative_probability, 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(cdf[1].value, 1.0);
  EXPECT_DOUBLE_EQ(cdf[2].cumulative_probability, 1.0);
}

TEST(Stats, LinearFitRecoversExactLine) {
  std::vector<double> x, y;
  for (int i = 0; i < 50; ++i) {
    x.push_back(i);
    y.push_back(2.5 * i - 7.0);
  }
  const auto fit = ws::linear_fit(x, y);
  EXPECT_NEAR(fit.slope, 2.5, 1e-9);
  EXPECT_NEAR(fit.intercept, -7.0, 1e-9);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-9);
  EXPECT_NEAR(fit.at(10.0), 18.0, 1e-9);
}

TEST(Stats, LinearFitNoisyR2BelowOne) {
  wild5g::Rng rng(11);
  std::vector<double> x, y;
  for (int i = 0; i < 200; ++i) {
    x.push_back(i);
    y.push_back(1.0 * i + rng.normal(0.0, 20.0));
  }
  const auto fit = ws::linear_fit(x, y);
  EXPECT_NEAR(fit.slope, 1.0, 0.15);
  EXPECT_LT(fit.r_squared, 1.0);
  EXPECT_GT(fit.r_squared, 0.5);
}

TEST(Stats, LinearFitRejectsConstantX) {
  const std::vector<double> x{1.0, 1.0, 1.0};
  const std::vector<double> y{1.0, 2.0, 3.0};
  EXPECT_THROW((void)ws::linear_fit(x, y), wild5g::Error);
}

TEST(Stats, MapeZeroForPerfectPrediction) {
  const std::vector<double> t{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(ws::mape_percent(t, t), 0.0);
}

TEST(Stats, MapeKnownValue) {
  const std::vector<double> truth{100.0, 200.0};
  const std::vector<double> pred{110.0, 180.0};
  EXPECT_NEAR(ws::mape_percent(truth, pred), 10.0, 1e-9);
}

TEST(Stats, MapeRejectsZeroTruth) {
  const std::vector<double> truth{0.0};
  const std::vector<double> pred{1.0};
  EXPECT_THROW((void)ws::mape_percent(truth, pred), wild5g::Error);
}

TEST(Stats, MaeKnownValue) {
  const std::vector<double> truth{1.0, 2.0};
  const std::vector<double> pred{2.0, 0.0};
  EXPECT_DOUBLE_EQ(ws::mae(truth, pred), 1.5);
}

// Property: percentile is monotone in p for arbitrary samples.
class PercentileMonotone : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PercentileMonotone, MonotoneInP) {
  wild5g::Rng rng(GetParam());
  std::vector<double> xs;
  const auto n = static_cast<int>(rng.uniform_int(1, 300));
  for (int i = 0; i < n; ++i) xs.push_back(rng.lognormal(1.0, 1.5));
  double prev = ws::percentile(xs, 0.0);
  for (double p = 5.0; p <= 100.0; p += 5.0) {
    const double value = ws::percentile(xs, p);
    EXPECT_GE(value, prev);
    prev = value;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PercentileMonotone,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// Property: harmonic mean <= arithmetic mean on positive samples.
class HmVsMean : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HmVsMean, HarmonicLeqArithmetic) {
  wild5g::Rng rng(GetParam());
  std::vector<double> xs;
  for (int i = 0; i < 64; ++i) xs.push_back(rng.uniform(0.1, 50.0));
  EXPECT_LE(ws::harmonic_mean(xs), ws::mean(xs) + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HmVsMean,
                         ::testing::Values(101, 202, 303, 404, 505));
