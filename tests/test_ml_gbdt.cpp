// Tests for gradient-boosted regression trees.
#include "ml/gbdt.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/error.h"
#include "core/rng.h"
#include "core/stats.h"

using wild5g::Rng;
using wild5g::ml::Dataset;
using wild5g::ml::DecisionTreeRegressor;
using wild5g::ml::GbdtConfig;
using wild5g::ml::GradientBoostedRegressor;

namespace {

Dataset smooth_data(int n, std::uint64_t seed) {
  Rng rng(seed);
  Dataset data;
  data.feature_names = {"x"};
  for (int i = 0; i < n; ++i) {
    const double x = rng.uniform(0.0, 10.0);
    data.add({x}, 3.0 * std::sin(x) + 0.5 * x);
  }
  return data;
}

}  // namespace

TEST(Gbdt, PredictBeforeFitThrows) {
  GradientBoostedRegressor model;
  EXPECT_THROW((void)model.predict({1.0}), wild5g::Error);
}

TEST(Gbdt, FitsConstantInOneStage) {
  Dataset data;
  data.feature_names = {"x"};
  for (int i = 0; i < 50; ++i) data.add({static_cast<double>(i)}, 4.0);
  GradientBoostedRegressor model;
  model.fit(data);
  EXPECT_NEAR(model.predict({25.0}), 4.0, 1e-9);
  // Residuals vanish immediately, so boosting stops early.
  EXPECT_LE(model.stage_count(), 1u);
}

TEST(Gbdt, BeatsShallowSingleTree) {
  const auto train = smooth_data(800, 1);
  const auto test = smooth_data(200, 2);

  wild5g::ml::TreeConfig shallow;
  shallow.max_depth = 3;
  shallow.min_samples_leaf = 3;
  shallow.min_samples_split = 6;
  DecisionTreeRegressor single(shallow);
  single.fit(train);

  GbdtConfig config;
  config.tree_count = 150;
  GradientBoostedRegressor boosted(config);
  boosted.fit(train);

  const double mae_single =
      wild5g::stats::mae(test.targets, single.predict_all(test));
  const double mae_boosted =
      wild5g::stats::mae(test.targets, boosted.predict_all(test));
  EXPECT_LT(mae_boosted, mae_single * 0.7);
}

TEST(Gbdt, MoreStagesReduceTrainError) {
  const auto train = smooth_data(500, 3);
  auto mae_with = [&](int stages) {
    GbdtConfig config;
    config.tree_count = stages;
    GradientBoostedRegressor model(config);
    model.fit(train);
    return wild5g::stats::mae(train.targets, model.predict_all(train));
  };
  EXPECT_LT(mae_with(100), mae_with(10));
  EXPECT_LT(mae_with(10), mae_with(1));
}

TEST(Gbdt, HandlesMultipleFeatures) {
  Rng rng(4);
  Dataset data;
  data.feature_names = {"a", "b"};
  for (int i = 0; i < 600; ++i) {
    const double a = rng.uniform(0.0, 1.0);
    const double b = rng.uniform(0.0, 1.0);
    data.add({a, b}, 2.0 * a - 3.0 * b + 1.0);
  }
  GradientBoostedRegressor model;
  model.fit(data);
  EXPECT_NEAR(model.predict({0.8, 0.2}), 2.0 * 0.8 - 3.0 * 0.2 + 1.0, 0.25);
}

TEST(Gbdt, RejectsBadConfig) {
  GbdtConfig config;
  config.tree_count = 0;
  GradientBoostedRegressor model(config);
  Dataset data;
  data.feature_names = {"x"};
  data.add({1.0}, 1.0);
  EXPECT_THROW(model.fit(data), wild5g::Error);
}
