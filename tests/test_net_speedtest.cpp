// Tests for the speedtest harness and server catalogs (Sec. 3).
#include "net/speedtest.h"

#include <gtest/gtest.h>

#include "core/error.h"
#include "core/rng.h"
#include "geo/geo.h"
#include "radio/ue.h"

namespace wn = wild5g::net;
namespace wr = wild5g::radio;
using wild5g::Rng;

namespace {

wn::SpeedtestConfig mmwave_config() {
  wn::SpeedtestConfig config;
  config.network = {wr::Carrier::kVerizon, wr::Band::kNrMmWave,
                    wr::DeploymentMode::kNsa};
  config.ue = wr::galaxy_s20u();
  config.ue_location = wild5g::geo::minneapolis().point;
  return config;
}

wn::SpeedtestServer local_server() {
  return {.name = "Verizon, Minneapolis",
          .location = {44.98, -93.26},
          .carrier_hosted = true};
}

}  // namespace

TEST(RttModel, GrowsLinearlyWithDistance) {
  const wr::NetworkConfig mm{wr::Carrier::kVerizon, wr::Band::kNrMmWave,
                             wr::DeploymentMode::kNsa};
  const double at0 = wn::path_rtt_ms(mm, 0.0);
  const double at1000 = wn::path_rtt_ms(mm, 1000.0);
  EXPECT_NEAR(at0, 5.6, 0.5);         // access latency only
  EXPECT_NEAR(at1000 - at0, 34.0, 1.0);  // 0.034 ms/km inflation
}

TEST(RttModel, MinimumRttNearPaperFloor) {
  // Paper: lowest observed RTT ~6 ms with a server ~3 km away.
  const wr::NetworkConfig mm{wr::Carrier::kVerizon, wr::Band::kNrMmWave,
                             wr::DeploymentMode::kNsa};
  EXPECT_NEAR(wn::path_rtt_ms(mm, 3.0), 6.0, 1.0);
}

TEST(RttModel, LossRateGrowsWithRtt) {
  EXPECT_LT(wn::loss_event_rate_per_s(10.0), wn::loss_event_rate_per_s(90.0));
}

TEST(Catalog, CarrierPoolCoversMetros) {
  const auto pool = wn::carrier_server_pool();
  EXPECT_GE(pool.size(), 25u);
  for (const auto& server : pool) {
    EXPECT_TRUE(server.carrier_hosted);
    EXPECT_EQ(server.port_cap_mbps, 0.0);
  }
}

TEST(Catalog, MinnesotaPoolMatchesFig24Structure) {
  const auto pool = wn::minnesota_server_pool();
  ASSERT_EQ(pool.size(), 37u);
  EXPECT_TRUE(pool.front().carrier_hosted);  // Verizon's own server first
  // Servers 25-28 (1-based) capped at ~2 Gbps; 29-33 at ~1 Gbps.
  for (std::size_t i = 24; i < 28; ++i) {
    EXPECT_NEAR(pool[i].port_cap_mbps, 2000.0, 1.0) << i;
  }
  for (std::size_t i = 28; i < 33; ++i) {
    EXPECT_NEAR(pool[i].port_cap_mbps, 1000.0, 1.0) << i;
  }
}

TEST(Harness, MultiConnReachesMultiGbpsNearServer) {
  // Fig. 3: with multiple connections, S20U exceeds 3 Gbps near the server.
  wn::SpeedtestHarness harness(mmwave_config());
  Rng rng(1);
  const auto result = harness.peak_of(local_server(),
                                      wn::ConnectionMode::kMultiple, 5, rng);
  EXPECT_GT(result.downlink_mbps, 2700.0);
  EXPECT_GT(result.uplink_mbps, 150.0);
  EXPECT_LT(result.rtt_ms, 9.0);
}

TEST(Harness, SingleConnDecaysWithDistance) {
  wn::SpeedtestHarness harness(mmwave_config());
  wn::SpeedtestServer far = local_server();
  far.name = "Verizon, Los Angeles";
  far.location = {34.0522, -118.2437};
  Rng rng(2);
  const auto near_result = harness.peak_of(
      local_server(), wn::ConnectionMode::kSingle, 5, rng);
  const auto far_result =
      harness.peak_of(far, wn::ConnectionMode::kSingle, 5, rng);
  EXPECT_GT(near_result.downlink_mbps, 1.4 * far_result.downlink_mbps);
  EXPECT_GT(far_result.rtt_ms, 50.0);
}

TEST(Harness, MultiConnFlatAcrossDistance) {
  // Fig. 3's headline: multi-connection throughput is roughly constant with
  // distance.
  wn::SpeedtestHarness harness(mmwave_config());
  wn::SpeedtestServer far = local_server();
  far.name = "Verizon, Seattle";
  far.location = {47.6062, -122.3321};
  Rng rng(3);
  const auto near_result = harness.peak_of(
      local_server(), wn::ConnectionMode::kMultiple, 5, rng);
  const auto far_result =
      harness.peak_of(far, wn::ConnectionMode::kMultiple, 5, rng);
  EXPECT_GT(far_result.downlink_mbps, 0.8 * near_result.downlink_mbps);
}

TEST(Harness, PortCapBindsThroughput) {
  wn::SpeedtestHarness harness(mmwave_config());
  wn::SpeedtestServer capped = local_server();
  capped.carrier_hosted = false;
  capped.port_cap_mbps = 1000.0;
  Rng rng(4);
  const auto result =
      harness.peak_of(capped, wn::ConnectionMode::kMultiple, 5, rng);
  EXPECT_LT(result.downlink_mbps, 1000.0);
  EXPECT_GT(result.downlink_mbps, 800.0);
}

TEST(Harness, SaLowBandRoughlyHalfOfNsa) {
  auto config = mmwave_config();
  config.network = {wr::Carrier::kTMobile, wr::Band::kNrLowBand,
                    wr::DeploymentMode::kNsa};
  config.session_rsrp_mean_dbm = -85.0;
  wn::SpeedtestHarness nsa(config);
  config.network.mode = wr::DeploymentMode::kSa;
  wn::SpeedtestHarness sa(config);
  Rng rng(5);
  const auto r_nsa =
      nsa.peak_of(local_server(), wn::ConnectionMode::kMultiple, 5, rng);
  const auto r_sa =
      sa.peak_of(local_server(), wn::ConnectionMode::kMultiple, 5, rng);
  EXPECT_GT(r_sa.downlink_mbps, 0.3 * r_nsa.downlink_mbps);
  EXPECT_LT(r_sa.downlink_mbps, 0.65 * r_nsa.downlink_mbps);
}

TEST(Harness, DeterministicInSeed) {
  wn::SpeedtestHarness harness(mmwave_config());
  Rng a(6);
  Rng b(6);
  const auto ra = harness.run(local_server(), wn::ConnectionMode::kSingle, a);
  const auto rb = harness.run(local_server(), wn::ConnectionMode::kSingle, b);
  EXPECT_DOUBLE_EQ(ra.downlink_mbps, rb.downlink_mbps);
}

TEST(Harness, PeakOfRejectsZeroRepeats) {
  wn::SpeedtestHarness harness(mmwave_config());
  Rng rng(7);
  EXPECT_THROW((void)harness.peak_of(local_server(),
                                     wn::ConnectionMode::kSingle, 0, rng),
               wild5g::Error);
}
