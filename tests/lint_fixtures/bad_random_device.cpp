// Fixture: trips ban-random-device and nothing else. Never compiled — this
// file exists only as wild5g_lint input (see test_lint_fixtures.cpp).
#include <random>

unsigned nondeterministic_seed() {
  std::random_device dev;
  return dev();
}
