// Fixture: passing a seconds value where the signature declares a
// milliseconds parameter must trip unit-mismatch-call (and nothing else).
// The declaration itself seeds the signature index; the call site binds an
// argument whose suffix disagrees with the parameter's.
void record_latency(double rtt_ms);

void demo() {
  double delay_s = 1.5;
  record_latency(delay_s);
}
