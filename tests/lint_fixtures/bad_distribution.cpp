// Fixture: trips ban-raw-engine (distribution construction — its output is
// implementation-defined even over a fixed engine) and nothing else.
// Never compiled — wild5g_lint input only (see test_lint_fixtures.cpp).
#include <random>

template <typename Engine>
double sample_unit(Engine& gen) {
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  return dist(gen);
}
