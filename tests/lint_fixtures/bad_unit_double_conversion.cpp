// Fixture: redundant units.h conversions must trip unit-double-conversion
// (and nothing else) in both shapes — an argument that already carries the
// target unit, and an inverse pair that cancels to an identity.
namespace wild5g {
constexpr double ms_to_s(double ms) { return ms / 1e3; }
constexpr double s_to_ms(double s) { return s * 1e3; }
}  // namespace wild5g

void demo() {
  double wait_s = 3.0;
  double t_ms = 7.0;
  double already = wild5g::ms_to_s(wait_s);
  double round_trip = wild5g::s_to_ms(wild5g::ms_to_s(t_ms));
  (void)already;
  (void)round_trip;
}
