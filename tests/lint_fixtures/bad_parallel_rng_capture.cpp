// Fixture: an Rng captured by reference into a parallel_map task lambda
// must trip parallel-rng-capture (and nothing else). The body only calls
// fork(), which is const and deterministic — the capture itself is the
// violation, because nothing stops a later edit from drawing through it.
struct Rng {
  Rng fork(long salt) const;
};
template <typename F>
void parallel_map(int n, F f);

void demo() {
  Rng rng;
  parallel_map(8, [&rng](int i) {
    Rng child = rng.fork(i);
    (void)child;
  });
}
