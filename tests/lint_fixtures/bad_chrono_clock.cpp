// Fixture: trips ban-wall-clock (std::chrono clocks) and nothing else.
// Never compiled — wild5g_lint input only (see test_lint_fixtures.cpp).
#include <chrono>

long long monotonic_ns() {
  const auto now = std::chrono::steady_clock::now();
  return now.time_since_epoch().count();
}
