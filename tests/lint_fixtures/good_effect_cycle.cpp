// Fixture: a *pure* mutual recursion — the fixpoint must stabilize with an
// empty effect signature for both cycle members, and a parallel task
// calling into the cycle stays clean. Pairs with bad_effect_cycle.cpp,
// which differs only by the global write at the base case.
int eff_pure_pong(int n);

int eff_pure_ping(int n) {
  if (n <= 0) return 0;
  return eff_pure_pong(n - 1) + 1;
}

int eff_pure_pong(int n) { return eff_pure_ping(n - 1); }

template <typename F>
void parallel_map(int n, F f);

void eff_pure_demo() {
  parallel_map(8, [&](int i) {
    int x = eff_pure_ping(i);
    (void)x;
  });
}
