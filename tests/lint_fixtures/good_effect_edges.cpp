// Fixture: tokenizer edge probes for the effect engine — effect-looking
// text inside raw strings and comments must contribute nothing to a
// function's signature, and the sanctioned per-task fork idiom must stay
// clean even though the helper genuinely draws on its Rng parameter.
struct Rng {
  double uniform();
  Rng fork(long salt) const;
  Rng split();
};

int g_eff_edges_lookalike = 0;  // wild5g-lint: allow(global-mutable-state) never written; exists to prove string/comment writes are not attributed

// g_eff_edges_lookalike = 99; a write in a comment is not a write
const char* eff_edges_banner() {
  return R"(g_eff_edges_lookalike = 7; rng.uniform();)";
}

double eff_edges_sample(Rng& r) { return r.uniform(); }

template <typename F>
void parallel_map(int n, F f);

void eff_edges_demo(Rng& rng) {
  Rng base = rng.split();
  parallel_map(8, [&](int i) {
    Rng child = base.fork(i);
    double x = eff_edges_sample(child);  // task-local stream: sanctioned
    const char* s = eff_edges_banner();
    (void)x;
    (void)s;
  });
}
