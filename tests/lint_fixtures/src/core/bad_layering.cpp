// Fixture: this file's virtual path places it in src/core, which depends on
// nothing outside core — the radio include below must trip layering (and
// nothing else). The target header does not need to exist: the rule reads
// the module off the include text.
#include "radio/types.h"
