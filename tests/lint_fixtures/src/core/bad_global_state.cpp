// Fixture: the global-mutable-state inventory. A src/ file with a
// namespace-scope mutable and a function-local static — both are shared
// state the multi-UE scheduler refactor cannot reason about, and both must
// be flagged (const-qualify, thread-confine, or justify).
namespace wild5g::fixture_globals {

int g_bad_counter = 0;

double bad_remember(double v) {
  static double last_value = 0.0;
  const double prev = last_value;
  last_value = v;
  return prev;
}

}  // namespace wild5g::fixture_globals
