// Fixture: file-scope state the inventory must NOT flag — const and
// constexpr values, thread_local confinement, allow-listed synchronization
// primitives, and a justified suppression on a genuinely shared mutable.
#include <mutex>

namespace wild5g::fixture_globals_ok {

constexpr int kGoodLimit = 8;
const double kGoodScale = 1.5;
thread_local int t_good_depth = 0;
std::mutex g_good_mutex;
std::once_flag g_good_once;
// wild5g-lint: allow(global-mutable-state) fixture probe: written once at
// startup before any parallel region exists
int g_good_suppressed = 0;

int good_bump() {
  static const int kStep = 2;  // const static-local: thread-safe init, no writes
  ++t_good_depth;
  return kGoodLimit + kStep;
}

}  // namespace wild5g::fixture_globals_ok
