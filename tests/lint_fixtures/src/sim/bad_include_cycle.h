// Fixture: a header whose include graph reaches itself must trip
// include-cycle (and nothing else). Self-inclusion is the minimal cycle;
// sim -> sim is layering-clean, so only the cycle rule fires.
#include "sim/bad_include_cycle.h"
