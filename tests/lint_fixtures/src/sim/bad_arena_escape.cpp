// Fixture: a pointer handed out by an arena's allocate() stored into a
// member that outlives the handler scope. Arena recycling makes this a
// latent use-after-free, so it must trip arena-escape (and nothing else).
// Returning a tracked pointer is the second escape shape probed here.
struct FixNode {
  int payload = 0;
};

class FixArena {
 public:
  void* allocate(unsigned long bytes);
};

class FixDispatcher {
 public:
  void stash() {
    FixNode* node = static_cast<FixNode*>(arena_.allocate(sizeof(FixNode)));
    saved_ = node;  // escape: member store outlives the handler
  }

  FixNode* leak() {
    FixNode* node = static_cast<FixNode*>(arena_.allocate(sizeof(FixNode)));
    return node;  // escape: returned to an arbitrary-lifetime caller
  }

 private:
  FixArena arena_;
  FixNode* saved_ = nullptr;
};
