// Fixture: checkpoint/restore symmetry, negative case. Every key the
// checkpoint body writes is read back by the paired restore_state and vice
// versa, so the resume byte-identity contract holds and nothing fires.
namespace wild5g::fixture_ckpt_ok {

struct CksOkValue {
  static CksOkValue object();
  void set(const char* key, long long v);
};

const CksOkValue& state_field(const CksOkValue& state, const char* key,
                              const char* what);

class CksOkCampaign {
 public:
  CksOkValue checkpoint_state() const {
    CksOkValue state = CksOkValue::object();
    state.set("rows", rows_);
    state.set("handoffs", handoffs_);
    return state;
  }

  void restore_state(const CksOkValue& state) {
    (void)state_field(state, "rows", "cks_ok_fixture");
    (void)state_field(state, "handoffs", "cks_ok_fixture");
  }

 private:
  long long rows_ = 0;
  long long handoffs_ = 0;
};

}  // namespace wild5g::fixture_ckpt_ok
