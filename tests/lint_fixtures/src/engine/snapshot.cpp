// Fixture: the sanctioned checkpoint writer. Its virtual path is exactly
// src/engine/snapshot.cpp, so the same stream calls that trip
// engine-blocking-call in bad_engine_blocking.cpp are exempt here — the
// snapshot writer is the one engine file allowed to touch the filesystem.
#include <fstream>
#include <string>

namespace wild5g::engine {

void write_checkpoint(const std::string& path, const std::string& body) {
  std::ofstream out(path);  // OK: snapshot.cpp is the sanctioned writer
  out << body;
}

std::string read_checkpoint(const std::string& path) {
  std::ifstream in(path);  // OK: snapshot.cpp is the sanctioned writer
  std::string text;
  std::getline(in, text);
  return text;
}

}  // namespace wild5g::engine
