// Fixture: blocking filesystem and sleep calls inside src/engine compute
// code (outside the sanctioned snapshot writer) must trip
// engine-blocking-call — and only that rule, so the ident set deliberately
// avoids clocks (ban-wall-clock's territory).
#include <chrono>
#include <fstream>
#include <string>
#include <thread>

namespace wild5g::engine {

std::string slurp_progress(const std::string& path) {
  std::ifstream in(path);  // BAD: engine code opening the filesystem
  std::string text;
  std::getline(in, text);
  return text;
}

void spill_progress(const std::string& path, const std::string& text) {
  std::ofstream out(path);  // BAD: only snapshot.cpp may write checkpoints
  out << text;
}

void throttle_step() {
  // BAD: sleeping on the compute thread stalls every queued campaign.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
}

}  // namespace wild5g::engine
