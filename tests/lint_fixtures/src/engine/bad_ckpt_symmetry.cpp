// Fixture: checkpoint/restore symmetry. The checkpoint body serializes
// "rows" and "handoffs" but restore_state only reads "rows" back — a resumed
// campaign would silently restart the handoff counter at zero, breaking the
// byte-identical-resume contract. Must trip checkpoint-restore-symmetry.
namespace wild5g::fixture_ckpt {

struct CksValue {
  static CksValue object();
  void set(const char* key, long long v);
};

const CksValue& state_field(const CksValue& state, const char* key,
                            const char* what);

class CksCampaign {
 public:
  CksValue checkpoint_state() const {
    CksValue state = CksValue::object();
    state.set("rows", rows_);
    state.set("handoffs", handoffs_);  // BAD: never restored below
    return state;
  }

  void restore_state(const CksValue& state) {
    (void)state_field(state, "rows", "cks_fixture");
  }

 private:
  long long rows_ = 0;
  long long handoffs_ = 0;
};

}  // namespace wild5g::fixture_ckpt
