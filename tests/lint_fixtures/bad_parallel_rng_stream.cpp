// Fixture: a draw inside a parallel_map task body on a stream that is not
// derived per task must trip parallel-rng-stream (and nothing else). The
// default [&] capture is the tree-wide idiom and is not itself a finding —
// the racing uniform() call on the outer stream is.
struct Rng {
  double uniform();
  Rng fork(long salt) const;
};
template <typename F>
void parallel_map(int n, F f);

void demo() {
  Rng rng;
  parallel_map(8, [&](int i) {
    double x = rng.uniform();
    (void)x;
    (void)i;
  });
}
