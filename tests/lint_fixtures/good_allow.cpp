// Fixture: clean — the banned construct carries a justified suppression, so
// wild5g_lint must exit 0 with no findings.
// Never compiled — wild5g_lint input only (see test_lint_fixtures.cpp).
#include <cstdio>

void report_throughput(double mbps) {
  // wild5g-lint: allow(printf-float) console-only progress line in a fixture;
  // nothing here is ever written into a golden document.
  std::printf("throughput: %7.2f Mbps\n", mbps);
}
