// Fixture: trips ban-raw-engine (engine construction) and nothing else.
// Never compiled — wild5g_lint input only (see test_lint_fixtures.cpp).
#include <random>

unsigned raw_engine_draw() {
  std::mt19937 gen(12345u);
  return gen();
}
