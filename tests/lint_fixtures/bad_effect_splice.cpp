// Fixture: tokenizer probe for the effect engine — the global-write
// identifier is split by a line splice inside the helper body. Phase-2
// splice removal must rejoin it so compute_direct_effects still records the
// write, and the task call trips parallel-effect-write (and nothing else).
int g_eff_spliced_total = 0;

void eff_spliced_bump(int v) {
  g_eff_\
spliced_total = v;
}

template <typename F>
void parallel_map(int n, F f);

void eff_spliced_demo() {
  parallel_map(8, [&](int i) { eff_spliced_bump(i); });
}
