// Fixture: trips unordered-iteration and nothing else — the file "feeds a
// metrics sink" (includes core/json.h) and range-fors over a hash map, so
// hash order would leak into the emitted document.
// Never compiled — wild5g_lint input only (see test_lint_fixtures.cpp).
#include <string>
#include <unordered_map>

#include "core/json.h"

wild5g::json::Value dump_counts(
    const std::unordered_map<std::string, int>& counts) {
  wild5g::json::Value out = wild5g::json::Value::object();
  for (const auto& [key, value] : counts) {
    out.set(key, value);
  }
  return out;
}
