// Fixture: tokenizer hazards that must not confuse any rule. Raw string
// literals quoting banned identifiers and printf conversions, digit
// separators, a line splice inside a comment, and UTF-8 prose — all of it
// lints clean.
//
// UTF-8 in comments: latência de 5G, 吞吐量, µW, naïve — multi-byte
// sequences stay comment text and never reach the token stream.
namespace {

// Raw strings: rule keywords inside literals are prose, not code.
const char* kProse =
    R"(rand() and srand() and system_clock are words, x == 1.0 is prose)";
const char* kFmt = R"fmt(%f %g %e look like printf floats but are not)fmt";

// Digit separators must lex as one number token, not a char literal.
constexpr long kBudgetBits = 1'000'000;
constexpr double kRate = 1.5e-3;

// A splice joins the next physical line into this comment: rand() \
   srand() — still commented out, still not a finding.

inline long add(long a, long b) { return a + b; }

}  // namespace

long use() {
  (void)kProse;
  (void)kFmt;
  return add(kBudgetBits, static_cast<long>(kRate * 0.0));
}
