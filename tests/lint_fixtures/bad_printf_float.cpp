// Fixture: trips printf-float and nothing else. Never compiled —
// wild5g_lint input only (see test_lint_fixtures.cpp).
#include <cstdio>

void report_throughput(double mbps) {
  std::printf("throughput: %7.2f Mbps\n", mbps);
}
