// Fixture: catch (...) blocks that swallow the exception — no rethrow, no
// stored exception_ptr, no diagnostic. Must trip exactly catch-swallow.
int risky();

int swallow_silently() {
  try {
    return risky();
  } catch (...) {
  }
  return -1;
}

int swallow_with_recovery_code() {
  int fallback = 0;
  try {
    fallback = risky();
  } catch (...) {
    fallback = -1;  // recovers, but nobody ever learns a failure happened
  }
  return fallback;
}

// A handled catch (...) must NOT trip the rule: rethrowing counts.
int rethrow_is_fine() {
  try {
    return risky();
  } catch (...) {
    throw;
  }
}
