// Fixture: a parallel_map task body that calls a helper whose *transitive*
// effects include a write to namespace-scope mutable state must trip
// parallel-effect-write (and nothing else), with the full 3-deep call chain
// in the message. Nothing in the task body touches the global lexically —
// only the effect engine can see this.
int g_eff_write_total = 0;

void eff_write_sink(int v) { g_eff_write_total = v; }

void eff_write_mid(int v) { eff_write_sink(v + 1); }

int eff_write_entry(int v) {
  eff_write_mid(v);
  return v;
}

template <typename F>
void parallel_map(int n, F f);

void eff_write_demo() {
  parallel_map(8, [&](int i) {
    int x = eff_write_entry(i);
    (void)x;
  });
}
