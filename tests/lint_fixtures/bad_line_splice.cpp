// Fixture: a backslash-newline splice may not hide a banned identifier from
// the token stream — phase-2 translation joins the lines before lexing, so
// the split call below must still trip ban-c-rand (and nothing else).
int demo() {
  return ra\
nd();
}
