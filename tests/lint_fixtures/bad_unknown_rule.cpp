// Fixture: trips unknown-rule and nothing else — the directive names a rule
// wild5g_lint does not define (typo-guard for suppressions).
// Never compiled — wild5g_lint input only (see test_lint_fixtures.cpp).
// wild5g-lint: allow(no-such-rule) this rule does not exist
int answer() { return 42; }
