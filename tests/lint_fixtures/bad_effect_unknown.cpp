// Fixture: two same-name, same-arity definitions with conflicting direct
// effect signatures. The engine cannot tell which one a call binds to, so
// resolution is poisoned with the explicit `unknown` effect and a task
// calling the name trips parallel-effect-unknown (and nothing else — the
// poison deliberately suppresses the write rule it might otherwise guess).
int g_eff_unknown_state = 0;

namespace eff_unknown_a {
int eff_unknown_poke(int x) {
  g_eff_unknown_state = x;
  return x;
}
}  // namespace eff_unknown_a

namespace eff_unknown_b {
int eff_unknown_poke(double x) { return static_cast<int>(x); }
}  // namespace eff_unknown_b

template <typename F>
void parallel_map(int n, F f);

void eff_unknown_demo() {
  parallel_map(8, [&](int i) {
    int x = eff_unknown_poke(i);
    (void)x;
  });
}
