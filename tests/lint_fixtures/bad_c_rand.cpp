// Fixture: trips ban-c-rand and nothing else. Never compiled — this file
// exists only as wild5g_lint input (see test_lint_fixtures.cpp).
#include <cstdlib>

int noisy_percent() { return std::rand() % 100; }
