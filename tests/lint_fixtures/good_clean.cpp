// Fixture: clean — ordered containers, tolerance-based comparison, and the
// seeded Rng API; wild5g_lint must exit 0 with no findings.
// Never compiled — wild5g_lint input only (see test_lint_fixtures.cpp).
#include <cmath>
#include <map>
#include <string>

#include "core/rng.h"

bool nearly(double a, double b) { return std::fabs(a - b) < 1e-9; }

double jitter(wild5g::Rng& rng) { return rng.uniform(-1.0, 1.0); }

int total(const std::map<std::string, int>& counts) {
  int sum = 0;
  for (const auto& [key, value] : counts) sum += value;
  return sum;
}
