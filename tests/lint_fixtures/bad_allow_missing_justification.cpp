// Fixture: trips allow-needs-justification and nothing else — the directive
// names a real rule but gives no reason, which is itself a finding.
// Never compiled — wild5g_lint input only (see test_lint_fixtures.cpp).
// wild5g-lint: allow(float-equality)
int answer() { return 42; }
