// Fixture: blocking outside the critical section. The guard's scope closes
// before the sleep, so no lock is held across the blocking call and nothing
// fires — the copy-out-then-unlock idiom the fix-it recommends.
#include <chrono>
#include <mutex>
#include <thread>

namespace wild5g::fixture_lock_blocking_ok {

std::mutex g_blk_ok_m;

void blk_ok_throttle() {
  {
    std::lock_guard<std::mutex> lock(g_blk_ok_m);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
}

}  // namespace wild5g::fixture_lock_blocking_ok
