// Fixture: blocking while holding a lock. The sleep runs with g_blk_m held,
// so every thread contending for the mutex inherits the full sleep latency —
// the lock-held-blocking-call rule composes the engine-blocking-call
// identifier set with the lock-tracking walk. Must trip only that rule.
#include <chrono>
#include <mutex>
#include <thread>

namespace wild5g::fixture_lock_blocking {

std::mutex g_blk_m;

void blk_throttle() {
  std::lock_guard<std::mutex> lock(g_blk_m);
  std::this_thread::sleep_for(std::chrono::milliseconds(1));  // BAD
}

}  // namespace wild5g::fixture_lock_blocking
