// Fixture: condition_variable::wait without a predicate. A bare wait(lock)
// returns on spurious wakeups and lost notifications alike; the two-argument
// predicate overload (or an explicit re-checked loop condition the analyzer
// cannot see) is the contract. Must trip cv-wait-no-predicate only.
#include <condition_variable>
#include <mutex>

namespace wild5g::fixture_cv_wait {

class CvwQueue {
 public:
  void wake() { cv_.notify_one(); }

  void wait_for_work() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock);  // BAD: no predicate, spurious wakeup falls through
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
};

}  // namespace wild5g::fixture_cv_wait
