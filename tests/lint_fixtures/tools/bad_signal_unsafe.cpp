// Fixture: async-signal-safety. sig_on_alarm is installed as a handler via
// sigaction, making it a handler root; it reaches std::malloc through
// sig_record(), and malloc is not async-signal-safe (a handler interrupting
// malloc's own critical section deadlocks). Must trip signal-unsafe-call
// with the handler -> helper -> malloc chain printed.
#include <csignal>
#include <cstdlib>

namespace wild5g::fixture_signal {

void sig_record() {
  void* scratch = std::malloc(16);  // BAD: reached from a handler root
  std::free(scratch);
}

void sig_on_alarm(int) { sig_record(); }

void sig_install() {
  struct sigaction action = {};
  action.sa_handler = sig_on_alarm;
  sigaction(SIGALRM, &action, nullptr);
}

}  // namespace wild5g::fixture_signal
