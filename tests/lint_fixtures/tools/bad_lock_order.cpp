// Fixture: lock-order cycle. lck_forward() holds g_lck_a while calling
// lck_grab_b(), which acquires g_lck_b — an a->b edge that only exists
// through the call graph. lck_reverse() acquires b then a directly. The
// cycle must be reported with the interprocedural witness chain for the
// call-edge hop (lck_forward -> lck_grab_b).
#include <mutex>

namespace wild5g::fixture_lock_order {

std::mutex g_lck_a;
std::mutex g_lck_b;

void lck_grab_b() { std::lock_guard<std::mutex> lock(g_lck_b); }

void lck_forward() {
  std::lock_guard<std::mutex> lock(g_lck_a);
  lck_grab_b();  // BAD: acquires b while holding a
}

void lck_reverse() {
  std::lock_guard<std::mutex> lock_b(g_lck_b);
  std::lock_guard<std::mutex> lock_a(g_lck_a);  // BAD: b -> a closes the cycle
}

}  // namespace wild5g::fixture_lock_order
