// Fixture: async-signal-safety, negative case. The handler stores to an
// atomic flag and issues a raw write(2) — both on the async-signal-safe
// allowlist — so the transitive reachability check finds nothing to flag.
#include <atomic>
#include <csignal>
#include <unistd.h>

namespace wild5g::fixture_signal_ok {

std::atomic<int> g_sig_ok_flag{0};

void sig_ok_handler(int) {
  g_sig_ok_flag.store(1);
  const char msg[] = "sig\n";
  write(2, msg, sizeof msg - 1);
}

void sig_ok_install() { std::signal(SIGINT, sig_ok_handler); }

}  // namespace wild5g::fixture_signal_ok
