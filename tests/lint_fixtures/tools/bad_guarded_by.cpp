// Fixture: guarded-by inference. Three of four accesses to total_ hold
// mutex_, so the analyzer infers GlkStats::total_ is guarded by it — and the
// fourth access, reached through peek() -> glk_raw() with no lock anywhere
// on the path, must trip guarded-by-violation with that call chain printed.
#include <mutex>

namespace wild5g::fixture_guarded {

class GlkStats {
 public:
  void add(int v) {
    std::lock_guard<std::mutex> lock(mutex_);
    total_ += v;
  }

  int snapshot() {
    std::lock_guard<std::mutex> lock(mutex_);
    return total_;
  }

  void reset() {
    std::lock_guard<std::mutex> lock(mutex_);
    total_ = 0;
  }

  int peek() { return glk_raw(); }  // BAD: no lock on this path

 private:
  int glk_raw() { return total_; }

  std::mutex mutex_;
  int total_ = 0;
};

}  // namespace wild5g::fixture_guarded
