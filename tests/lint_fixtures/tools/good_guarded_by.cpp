// Fixture: guarded-by inference, negative case. Every access to total_
// either holds mutex_ lexically or sits in a helper whose every caller holds
// it — the interprocedural held-set H(glk_ok_raw) inherits the guard, so the
// member is proved mutex-confined and nothing fires.
#include <mutex>

namespace wild5g::fixture_guarded_ok {

class GlkOkStats {
 public:
  void add(int v) {
    std::lock_guard<std::mutex> lock(mutex_);
    total_ += v;
  }

  int snapshot() {
    std::lock_guard<std::mutex> lock(mutex_);
    return glk_ok_raw();  // helper inherits the guard context
  }

  void reset() {
    std::lock_guard<std::mutex> lock(mutex_);
    total_ = 0;
  }

 private:
  int glk_ok_raw() { return total_; }

  std::mutex mutex_;
  int total_ = 0;
};

}  // namespace wild5g::fixture_guarded_ok
