// Fixture: lock-order, negative case. Both call paths acquire g_lck_ok_a
// before g_lck_ok_b — including one nesting that only happens through a
// call — so the acquired-while-held graph is acyclic and nothing fires.
#include <mutex>

namespace wild5g::fixture_lock_order_ok {

std::mutex g_lck_ok_a;
std::mutex g_lck_ok_b;

void lck_ok_grab_b() { std::lock_guard<std::mutex> lock(g_lck_ok_b); }

void lck_ok_forward() {
  std::lock_guard<std::mutex> lock(g_lck_ok_a);
  lck_ok_grab_b();
}

void lck_ok_same_order() {
  std::lock_guard<std::mutex> lock_a(g_lck_ok_a);
  std::lock_guard<std::mutex> lock_b(g_lck_ok_b);
}

}  // namespace wild5g::fixture_lock_order_ok
