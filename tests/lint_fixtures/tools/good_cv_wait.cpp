// Fixture: condition_variable::wait with a predicate — the overload that
// re-checks the condition around spurious wakeups. Nothing fires; the
// ready_ member is also proved mutex-confined (set and read under mutex_).
#include <condition_variable>
#include <mutex>

namespace wild5g::fixture_cv_wait_ok {

class CvwOkQueue {
 public:
  void wake() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ready_ = true;
    }
    cv_.notify_one();
  }

  void wait_for_work() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return ready_; });
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  bool ready_ = false;
};

}  // namespace wild5g::fixture_cv_wait_ok
