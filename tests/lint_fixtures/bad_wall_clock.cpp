// Fixture: trips ban-wall-clock and nothing else. Never compiled — this file
// exists only as wild5g_lint input (see test_lint_fixtures.cpp).
#include <ctime>

long epoch_seconds() { return static_cast<long>(time(nullptr)); }
