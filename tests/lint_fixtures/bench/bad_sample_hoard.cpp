// Fixture: a bench campaign hoarding samples in a vector and querying the
// sort-on-query stats helpers. Virtual path puts this under bench/, so it
// must trip exactly bench-sample-hoard (three call sites below).
// Never compiled — wild5g_lint input only (see test_lint_fixtures.cpp).
#include <vector>

namespace stats {
double percentile(const std::vector<double>& xs, double p);
double median(const std::vector<double>& xs);
double p95(const std::vector<double>& xs);
}  // namespace stats

double summarize_campaign(const std::vector<double>& per_run_mbps) {
  std::vector<double> hoard(per_run_mbps);  // O(n) kept alive for one number
  const double p90 = stats::percentile(hoard, 90.0);
  const double mid = stats::median(hoard);
  return p90 + mid + stats::p95(hoard);
}

// Member-style queries are the sanctioned streaming API and must NOT trip
// the rule: SampleAccumulator exposes the same names behind '.'.
struct Accumulator {
  double percentile(double p) const;
  double median() const;
  double p95() const;
};

double summarize_streaming(const Accumulator& acc) {
  return acc.percentile(90.0) + acc.median() + acc.p95();
}
