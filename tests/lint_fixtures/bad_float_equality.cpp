// Fixture: trips float-equality and nothing else. Never compiled —
// wild5g_lint input only (see test_lint_fixtures.cpp).
bool converged(double residual) { return residual == 0.0; }
