// Fixture: mutual recursion whose cycle reaches a global write. The
// fixpoint iteration must stabilize (not hang) with both cycle members
// carrying writes_global, and a task calling into the cycle trips
// parallel-effect-write with the chain threaded through the recursion.
int g_eff_cycle_hits = 0;

void eff_cycle_pong(int n);

void eff_cycle_ping(int n) {
  if (n <= 0) {
    g_eff_cycle_hits += 1;
    return;
  }
  eff_cycle_pong(n - 1);
}

void eff_cycle_pong(int n) { eff_cycle_ping(n - 1); }

template <typename F>
void parallel_map(int n, F f);

void eff_cycle_demo() {
  parallel_map(8, [&](int i) { eff_cycle_pong(i); });
}
