// Fixture: a helper that draws on an Rng parameter is fine per se — until a
// parallel_map task feeds it the *captured outer* stream instead of a
// task-local fork. The effect engine records the draw positionally
// (rng param 0) and the task-site check sees a captured argument in that
// slot: parallel-effect-rng, and nothing else. The [&] capture plus a free
// call keeps the lexical parallel-rng rules silent on purpose.
struct Rng {
  double uniform();
  Rng fork(long salt) const;
};

double eff_rng_sample(Rng& r) { return r.uniform(); }

template <typename F>
void parallel_map(int n, F f);

void eff_rng_demo() {
  Rng rng;
  parallel_map(8, [&](int i) {
    double x = eff_rng_sample(rng);
    (void)x;
    (void)i;
  });
}
