// Fixture: a helper mutating a non-const reference parameter, fed a
// captured object from inside a parallel_map task — every task aliases the
// same accumulator, so the writes race. Must trip parallel-effect-alias
// (and nothing else). The positional engine only blames the argument that
// lands in the mutated slot; the value argument rides along untouched.
struct EffAliasAcc {
  double value = 0.0;
};

void eff_alias_add(EffAliasAcc& acc, double v) { acc.value += v; }

template <typename F>
void parallel_map(int n, F f);

void eff_alias_demo() {
  EffAliasAcc total;
  parallel_map(8, [&](int i) {
    eff_alias_add(total, static_cast<double>(i));
  });
}
