// Fixture: assigning a seconds value to a milliseconds variable must trip
// unit-mismatch-assign (and nothing else). The numeric initializers are
// unit-silent on purpose — literals carry no suffix, so only the cross-unit
// assignment below is a finding.
void demo() {
  double rtt_ms = 0.0;
  double wait_s = 2.0;
  rtt_ms = wait_s;
  (void)rtt_ms;
}
