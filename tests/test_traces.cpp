// Tests for the Lumos5G-like trace generator (Sec. 5.1's network substrate).
#include "traces/traces.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/error.h"
#include "core/rng.h"
#include "core/stats.h"

namespace wt = wild5g::traces;
using wild5g::Rng;

TEST(Trace, AtExtendsLastSample) {
  wt::Trace trace;
  trace.mbps = {10.0, 20.0, 30.0};
  EXPECT_DOUBLE_EQ(trace.at(0.5), 10.0);
  EXPECT_DOUBLE_EQ(trace.at(2.2), 30.0);
  EXPECT_DOUBLE_EQ(trace.at(99.0), 30.0);
  EXPECT_DOUBLE_EQ(trace.duration_s(), 3.0);
}

TEST(Trace, AtRejectsNegativeTime) {
  wt::Trace trace;
  trace.mbps = {1.0};
  EXPECT_THROW((void)trace.at(-0.1), wild5g::Error);
}

TEST(Generator, PopulationMedianHitsAnchor) {
  Rng rng(1);
  const auto mm = wt::generate_traces(wt::lumos5g_mmwave_config(), rng);
  EXPECT_EQ(mm.size(), 121u);
  EXPECT_NEAR(wt::population_median_mbps(mm), 160.0, 2.0);

  Rng rng2(2);
  const auto lte = wt::generate_traces(wt::lumos5g_lte_config(), rng2);
  EXPECT_EQ(lte.size(), 175u);
  EXPECT_NEAR(wt::population_median_mbps(lte), 20.0, 0.5);
}

TEST(Generator, FiveGMeanAboutTenXFourG) {
  // Sec. 5.1: 5G's mean throughput is ~10x that of 4G.
  Rng rng(3);
  const auto mm = wt::generate_traces(wt::lumos5g_mmwave_config(), rng);
  Rng rng2(4);
  const auto lte = wt::generate_traces(wt::lumos5g_lte_config(), rng2);
  double mean_5g = 0.0;
  for (const auto& t : mm) mean_5g += t.mean();
  mean_5g /= static_cast<double>(mm.size());
  double mean_4g = 0.0;
  for (const auto& t : lte) mean_4g += t.mean();
  mean_4g /= static_cast<double>(lte.size());
  EXPECT_GT(mean_5g / mean_4g, 6.0);
  EXPECT_LT(mean_5g / mean_4g, 16.0);
}

TEST(Generator, FiveGSwingsFourGStable) {
  Rng rng(5);
  const auto mm = wt::generate_traces(wt::lumos5g_mmwave_config(), rng);
  Rng rng2(6);
  const auto lte = wt::generate_traces(wt::lumos5g_lte_config(), rng2);
  // Coefficient of variation: 5G wild, 4G tame.
  auto mean_cv = [](const std::vector<wt::Trace>& traces) {
    double cv = 0.0;
    for (const auto& t : traces) {
      cv += wild5g::stats::stddev(t.mbps) / wild5g::stats::mean(t.mbps);
    }
    return cv / static_cast<double>(traces.size());
  };
  // 4G fluctuates (congestion episodes) but mmWave swings far harder.
  EXPECT_GT(mean_cv(mm), 1.8 * mean_cv(lte));
}

TEST(Generator, FiveGHasNearZeroOutages) {
  // Blockage must show up as deep dips (the ABR stress of Sec. 5).
  Rng rng(7);
  const auto mm = wt::generate_traces(wt::lumos5g_mmwave_config(), rng);
  int traces_with_outage = 0;
  for (const auto& t : mm) {
    const double peak = *std::max_element(t.mbps.begin(), t.mbps.end());
    const double low = *std::min_element(t.mbps.begin(), t.mbps.end());
    if (low < 0.1 * peak) ++traces_with_outage;
  }
  EXPECT_GT(traces_with_outage, static_cast<int>(mm.size()) / 2);
}

TEST(Generator, FourGNeverCollapses) {
  Rng rng(8);
  const auto lte = wt::generate_traces(wt::lumos5g_lte_config(), rng);
  for (const auto& t : lte) {
    const double low = *std::min_element(t.mbps.begin(), t.mbps.end());
    EXPECT_GT(low, 1.0);  // Mbps; stable LTE floor after scaling
  }
}

TEST(Generator, DeterministicInSeed) {
  Rng a(9);
  Rng b(9);
  const auto ta = wt::generate_traces(wt::lumos5g_mmwave_config(), a);
  const auto tb = wt::generate_traces(wt::lumos5g_mmwave_config(), b);
  ASSERT_EQ(ta.size(), tb.size());
  EXPECT_EQ(ta[7].mbps, tb[7].mbps);
}

TEST(Generator, TraceIdsAreUnique) {
  Rng rng(10);
  auto config = wt::lumos5g_mmwave_config();
  config.count = 10;
  const auto traces = wt::generate_traces(config, rng);
  for (std::size_t i = 0; i < traces.size(); ++i) {
    for (std::size_t j = i + 1; j < traces.size(); ++j) {
      EXPECT_NE(traces[i].id, traces[j].id);
    }
  }
}

TEST(Generator, RejectsInvalidConfig) {
  Rng rng(11);
  wt::TraceSetConfig config;
  config.count = 0;
  EXPECT_THROW((void)wt::generate_traces(config, rng), wild5g::Error);
}
