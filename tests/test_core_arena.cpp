// Tests for the bump/slab arena behind the simulator's event hot path.
#include "core/arena.h"

#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <vector>

#include "core/error.h"

using wild5g::Arena;

TEST(Arena, AllocationsAreAlignedAndDisjoint) {
  Arena arena;
  std::vector<void*> blocks;
  for (std::size_t bytes : {1u, 8u, 16u, 17u, 48u, 64u, 200u, 2048u}) {
    void* block = arena.allocate(bytes);
    ASSERT_NE(block, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(block) % Arena::kQuantum, 0u)
        << bytes << " bytes";
    // Writable over the full requested size.
    std::memset(block, 0xab, bytes);
    blocks.push_back(block);
  }
  const std::set<void*> unique(blocks.begin(), blocks.end());
  EXPECT_EQ(unique.size(), blocks.size());
}

TEST(Arena, RecycledBlockIsReusedBySameSizeClass) {
  Arena arena;
  void* first = arena.allocate(48);
  arena.recycle(first, 48);
  // Same size class (rounded to the same quantum multiple) pops the block.
  void* second = arena.allocate(40);
  EXPECT_EQ(second, first);
  // A different size class must not steal it.
  arena.recycle(second, 48);
  void* other = arena.allocate(128);
  EXPECT_NE(other, first);
}

TEST(Arena, SteadyStateChurnStopsGrowing) {
  Arena arena;
  // Warm up: allocate/recycle the working set once.
  constexpr std::size_t kLive = 64;
  constexpr std::size_t kBytes = 96;
  std::vector<void*> live;
  for (std::size_t i = 0; i < kLive; ++i) {
    live.push_back(arena.allocate(kBytes));
  }
  for (void* block : live) arena.recycle(block, kBytes);
  const std::size_t reserved_after_warmup = arena.bytes_reserved();
  EXPECT_GT(reserved_after_warmup, 0u);

  // A million further schedule/fire pairs must not touch the heap again.
  for (int round = 0; round < 1'000'000; ++round) {
    void* block = arena.allocate(kBytes);
    arena.recycle(block, kBytes);
  }
  EXPECT_EQ(arena.bytes_reserved(), reserved_after_warmup);
}

TEST(Arena, LargeBlocksGetDedicatedChunksAndDieOnReset) {
  Arena arena;
  const std::size_t before = arena.bytes_reserved();
  void* large = arena.allocate(Arena::kMaxSmallBytes + 1);
  std::memset(large, 0x5c, Arena::kMaxSmallBytes + 1);
  EXPECT_GT(arena.bytes_reserved(), before);
  // recycle() is a no-op for large blocks; they are retained until reset.
  arena.recycle(large, Arena::kMaxSmallBytes + 1);
  const std::size_t with_large = arena.bytes_reserved();
  arena.reset();
  EXPECT_LT(arena.bytes_reserved(), with_large);
}

TEST(Arena, ResetRetainsSmallChunksForReuse) {
  Arena arena;
  for (int i = 0; i < 1000; ++i) (void)arena.allocate(64);
  const std::size_t reserved = arena.bytes_reserved();
  arena.reset();
  // Chunks are retained across reset...
  EXPECT_EQ(arena.bytes_reserved(), reserved);
  // ...and the rewound cursor serves the same load without new chunks.
  for (int i = 0; i < 1000; ++i) (void)arena.allocate(64);
  EXPECT_EQ(arena.bytes_reserved(), reserved);
}

TEST(Arena, RejectsChunkSmallerThanLargestSmallBlock) {
  EXPECT_THROW(Arena(Arena::kMaxSmallBytes / 2), wild5g::Error);
}
