// Tests for the power-waveform synthesizer (the simulated Monsoon feed).
#include "power/waveform.h"

#include <gtest/gtest.h>

#include "core/error.h"
#include "core/rng.h"
#include "rrc/state_machine.h"

namespace wp = wild5g::power;
namespace wr = wild5g::rrc;
using wild5g::Rng;

namespace {

/// Standard single-burst experiment: idle, one transfer, then full decay
/// (the Sec. 4.1 methodology for capturing tail power).
std::vector<wr::StateSegment> single_burst_timeline(
    const wr::RrcConfig& config, double horizon_ms = 60000.0) {
  const std::vector<wr::ActivityBurst> bursts = {{2000.0, 6000.0, 300.0, 10.0}};
  return wr::build_timeline(config, bursts, horizon_ms);
}

}  // namespace

TEST(Waveform, SampleCountMatchesRateAndHorizon) {
  const auto profile = wr::profile_by_name("Verizon 4G");
  wp::WaveformSynthesizer synth(profile, wp::DevicePowerProfile::s20u(),
                                5000.0);
  Rng rng(1);
  const auto trace = synth.synthesize(single_burst_timeline(profile.config),
                                      rng);
  EXPECT_EQ(trace.samples_mw.size(), static_cast<std::size_t>(60.0 * 5000.0));
  EXPECT_NEAR(trace.duration_s(), 60.0, 1e-6);
}

// Table 2 validation: the measured tail-window average must recover each
// network's configured tail power.
class TailPower : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TailPower, MeasuredTailMatchesTable2) {
  const auto& profile = wr::table7_profiles()[GetParam()];
  if (profile.config.network.band == wild5g::radio::Band::kNrLowBand &&
      !wp::DevicePowerProfile::s20u().has_rail(
          wp::rail_key(profile.config.network))) {
    GTEST_SKIP();
  }
  wp::WaveformSynthesizer synth(profile, wp::DevicePowerProfile::s20u(),
                                5000.0);
  Rng rng(2 + GetParam());
  const auto trace =
      synth.synthesize(single_burst_timeline(profile.config), rng);
  // Tail window: transfer ends at t=6 s, tail runs for the inactivity timer.
  const double tail_from_s = 6.2;
  const double tail_to_s =
      6.0 + profile.config.inactivity_timer_ms / 1000.0 - 0.2;
  const double measured = trace.average_mw(tail_from_s, tail_to_s);
  EXPECT_NEAR(measured, profile.power.tail_mw, 0.10 * profile.power.tail_mw)
      << profile.config.name;
}

INSTANTIATE_TEST_SUITE_P(Table7, TailPower,
                         ::testing::Values(0u, 1u, 2u, 3u, 4u, 5u));

TEST(Waveform, IdleFloorWellBelowTail) {
  const auto profile = wr::profile_by_name("Verizon NSA mmWave");
  wp::WaveformSynthesizer synth(profile, wp::DevicePowerProfile::s20u());
  Rng rng(3);
  const auto timeline = single_burst_timeline(profile.config, 120000.0);
  const auto trace = synth.synthesize(timeline, rng);
  const double idle = trace.average_mw(60.0, 119.0);  // long after decay
  EXPECT_LT(idle, profile.power.tail_mw * 0.2);
  EXPECT_NEAR(idle, profile.power.idle_mw, profile.power.idle_mw * 0.5);
}

TEST(Waveform, TransferPowerDominates) {
  const auto profile = wr::profile_by_name("Verizon NSA mmWave");
  wp::WaveformSynthesizer synth(profile, wp::DevicePowerProfile::s20u());
  Rng rng(4);
  const auto trace =
      synth.synthesize(single_burst_timeline(profile.config), rng);
  // During the 300 Mbps transfer (t in 4..6 s; promotion eats the head).
  const double transfer = trace.average_mw(4.5, 5.9);
  const double expected = wp::DevicePowerProfile::s20u().transfer_power_mw(
      wp::RailKey::kNsaMmWave, 300.0, 10.0, -80.0);
  EXPECT_NEAR(transfer, expected, 0.08 * expected);
}

TEST(Waveform, NsaPromotionShowsSwitchPower) {
  // Table 2: the 4G->5G switch burns ~1.5 W on Verizon mmWave.
  const auto profile = wr::profile_by_name("Verizon NSA mmWave");
  wp::WaveformSynthesizer synth(profile, wp::DevicePowerProfile::s20u());
  Rng rng(5);
  const auto trace =
      synth.synthesize(single_burst_timeline(profile.config), rng);
  // Promotion occupies [2.0, 2.0 + 1.907] s.
  const double promo = trace.average_mw(2.05, 3.8);
  EXPECT_NEAR(promo, profile.power.switch_mw, 0.10 * profile.power.switch_mw);
}

TEST(Waveform, EnergyIntegratesAveragePower) {
  const auto profile = wr::profile_by_name("T-Mobile 4G");
  wp::WaveformSynthesizer synth(profile, wp::DevicePowerProfile::s20u());
  Rng rng(6);
  const auto trace =
      synth.synthesize(single_burst_timeline(profile.config), rng);
  EXPECT_NEAR(trace.energy_j(),
              trace.average_mw() / 1000.0 * trace.duration_s(), 1e-6);
}

TEST(Waveform, RsrpTrajectoryRaisesTransferPower) {
  const auto profile = wr::profile_by_name("Verizon NSA mmWave");
  wp::WaveformSynthesizer synth(profile, wp::DevicePowerProfile::s20u());
  Rng rng_a(7);
  Rng rng_b(7);
  const auto timeline = single_burst_timeline(profile.config, 10000.0);
  const auto good = synth.synthesize(timeline, rng_a,
                                     [](double) { return -75.0; });
  const auto weak = synth.synthesize(timeline, rng_b,
                                     [](double) { return -107.0; });
  EXPECT_GT(weak.average_mw(4.5, 5.9), good.average_mw(4.5, 5.9) * 1.15);
}

TEST(Waveform, EmptyTimelineRejected) {
  const auto profile = wr::profile_by_name("Verizon 4G");
  wp::WaveformSynthesizer synth(profile, wp::DevicePowerProfile::s20u());
  Rng rng(8);
  EXPECT_THROW((void)synth.synthesize({}, rng), wild5g::Error);
}

TEST(Waveform, AverageWindowValidation) {
  wp::PowerTrace trace;
  trace.sample_rate_hz = 10.0;
  trace.samples_mw.assign(100, 50.0);
  EXPECT_NEAR(trace.average_mw(1.0, 5.0), 50.0, 1e-9);
  EXPECT_THROW((void)trace.average_mw(5.0, 5.0), wild5g::Error);
  EXPECT_THROW((void)trace.average_mw(20.0, 30.0), wild5g::Error);
}
