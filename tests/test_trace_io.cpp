// Tests for trace/campaign CSV serialization.
#include "traces/trace_io.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "core/error.h"
#include "core/rng.h"
#include "power/campaign.h"
#include "radio/ue.h"

namespace wt = wild5g::traces;
using wild5g::Rng;

TEST(TraceIo, RoundTripsGeneratedPopulation) {
  Rng rng(1);
  auto config = wt::lumos5g_mmwave_config();
  config.count = 5;
  const auto traces = wt::generate_traces(config, rng);

  std::stringstream buffer;
  wt::write_traces_csv(buffer, traces);
  const auto loaded = wt::read_traces_csv(buffer);

  ASSERT_EQ(loaded.size(), traces.size());
  for (std::size_t i = 0; i < traces.size(); ++i) {
    EXPECT_EQ(loaded[i].id, traces[i].id);
    EXPECT_DOUBLE_EQ(loaded[i].interval_s, traces[i].interval_s);
    ASSERT_EQ(loaded[i].mbps.size(), traces[i].mbps.size());
    for (std::size_t j = 0; j < traces[i].mbps.size(); ++j) {
      EXPECT_NEAR(loaded[i].mbps[j], traces[i].mbps[j],
                  1e-9 * traces[i].mbps[j] + 1e-12);
    }
  }
}

TEST(TraceIo, RejectsWrongHeader) {
  std::stringstream buffer("wrong,header\n1,2\n");
  EXPECT_THROW((void)wt::read_traces_csv(buffer), wild5g::Error);
}

TEST(TraceIo, RejectsMalformedNumber) {
  std::stringstream buffer("trace_id,interval_s,index,mbps\nt0,1.0,0,abc\n");
  EXPECT_THROW((void)wt::read_traces_csv(buffer), wild5g::Error);
}

TEST(TraceIo, RejectsNonContiguousIndex) {
  std::stringstream buffer(
      "trace_id,interval_s,index,mbps\nt0,1.0,0,5\nt0,1.0,2,6\n");
  EXPECT_THROW((void)wt::read_traces_csv(buffer), wild5g::Error);
}

TEST(TraceIo, EmptyInputRejected) {
  std::stringstream buffer("");
  EXPECT_THROW((void)wt::read_traces_csv(buffer), wild5g::Error);
}

TEST(TraceIo, FileRoundTrip) {
  Rng rng(2);
  auto config = wt::lumos5g_lte_config();
  config.count = 3;
  const auto traces = wt::generate_traces(config, rng);
  const std::string path = "/tmp/wild5g_test_traces.csv";
  wt::save_traces_csv(path, traces);
  const auto loaded = wt::load_traces_csv(path);
  EXPECT_EQ(loaded.size(), traces.size());
  EXPECT_THROW((void)wt::load_traces_csv("/nonexistent/nope.csv"),
               wild5g::Error);
}

TEST(TraceIo, CampaignRoundTrip) {
  wild5g::power::WalkingCampaignConfig campaign;
  campaign.network = {wild5g::radio::Carrier::kVerizon,
                      wild5g::radio::Band::kNrMmWave,
                      wild5g::radio::DeploymentMode::kNsa};
  campaign.ue = wild5g::radio::galaxy_s20u();
  campaign.duration_s = 30.0;
  Rng rng(3);
  const auto samples = wild5g::power::run_walking_campaign(
      campaign, wild5g::power::DevicePowerProfile::s20u(), rng);

  std::stringstream buffer;
  wt::write_campaign_csv(buffer, samples);
  const auto loaded = wt::read_campaign_csv(buffer);
  ASSERT_EQ(loaded.size(), samples.size());
  EXPECT_NEAR(loaded[10].power_mw, samples[10].power_mw, 1e-6);
  EXPECT_NEAR(loaded[10].rsrp_dbm, samples[10].rsrp_dbm, 1e-9);
}

TEST(TraceIo, CampaignRejectsShortRow) {
  std::stringstream buffer(
      "t_s,rsrp_dbm,dl_mbps,ul_mbps,power_mw\n1,2,3\n");
  EXPECT_THROW((void)wt::read_campaign_csv(buffer), wild5g::Error);
}

TEST(TraceIo, RejectsTruncatedRow) {
  // A file cut off mid-row (fewer fields) or mid-number must raise a clean
  // wild5g::Error, never parse garbage.
  {
    std::stringstream buffer("trace_id,interval_s,index,mbps\nt0,1.0,0\n");
    EXPECT_THROW((void)wt::read_traces_csv(buffer), wild5g::Error);
  }
  {
    std::stringstream buffer("trace_id,interval_s,index,mbps\nt0,1.0,0,5.3e");
    EXPECT_THROW((void)wt::read_traces_csv(buffer), wild5g::Error);
  }
  {
    // Header itself truncated.
    std::stringstream buffer("trace_id,interval_s,ind");
    EXPECT_THROW((void)wt::read_traces_csv(buffer), wild5g::Error);
  }
}

TEST(TraceIo, RejectsNonFiniteFieldsOnRead) {
  for (const char* bad : {"nan", "inf", "-inf", "NAN"}) {
    std::stringstream buffer(std::string("trace_id,interval_s,index,mbps\n") +
                             "t0,1.0,0," + bad + "\n");
    EXPECT_THROW((void)wt::read_traces_csv(buffer), wild5g::Error)
        << "field: " << bad;
  }
  std::stringstream campaign(
      "t_s,rsrp_dbm,dl_mbps,ul_mbps,power_mw\n0.0,nan,1,2,3\n");
  EXPECT_THROW((void)wt::read_campaign_csv(campaign), wild5g::Error);
}

TEST(TraceIo, RejectsNonFiniteFieldsOnWrite) {
  wt::Trace trace;
  trace.id = "t0";
  trace.interval_s = 1.0;
  trace.mbps = {1.0, std::nan(""), 3.0};
  std::stringstream buffer;
  EXPECT_THROW(wt::write_traces_csv(buffer, {trace}), wild5g::Error);

  std::vector<wild5g::power::CampaignSample> samples(1);
  samples[0] = {0.0, -90.0, std::numeric_limits<double>::infinity(), 1.0,
                2000.0};
  std::stringstream campaign;
  EXPECT_THROW(wt::write_campaign_csv(campaign, samples), wild5g::Error);
}

TEST(TraceIo, CampaignEmptyInputRejected) {
  std::stringstream buffer("");
  EXPECT_THROW((void)wt::read_campaign_csv(buffer), wild5g::Error);
}
