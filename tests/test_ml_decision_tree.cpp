// Tests for the CART regressor and classifier.
#include "ml/decision_tree.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/error.h"
#include "core/rng.h"
#include "core/stats.h"

using wild5g::Rng;
using wild5g::ml::Dataset;
using wild5g::ml::DecisionTreeClassifier;
using wild5g::ml::DecisionTreeRegressor;
using wild5g::ml::TreeConfig;

namespace {

TreeConfig loose_config() {
  TreeConfig config;
  config.max_depth = 10;
  config.min_samples_leaf = 1;
  config.min_samples_split = 2;
  return config;
}

}  // namespace

TEST(Regressor, FitsPiecewiseConstantExactly) {
  Dataset data;
  data.feature_names = {"x"};
  for (int i = 0; i < 40; ++i) {
    const double x = i;
    data.add({x}, x < 20.0 ? 5.0 : 11.0);
  }
  DecisionTreeRegressor tree(loose_config());
  tree.fit(data);
  EXPECT_DOUBLE_EQ(tree.predict({{3.0}}), 5.0);
  EXPECT_DOUBLE_EQ(tree.predict({{35.0}}), 11.0);
  EXPECT_LE(tree.depth(), 2);
}

TEST(Regressor, PredictBeforeFitThrows) {
  DecisionTreeRegressor tree;
  EXPECT_THROW((void)tree.predict({{1.0}}), wild5g::Error);
}

TEST(Regressor, ApproximatesSmoothFunction) {
  Rng rng(3);
  Dataset data;
  data.feature_names = {"x"};
  for (int i = 0; i < 600; ++i) {
    const double x = rng.uniform(0.0, 10.0);
    data.add({x}, std::sin(x));
  }
  DecisionTreeRegressor tree(loose_config());
  tree.fit(data);
  double max_err = 0.0;
  for (double x = 0.2; x < 10.0; x += 0.13) {
    max_err = std::max(max_err, std::abs(tree.predict({{x}}) - std::sin(x)));
  }
  EXPECT_LT(max_err, 0.25);
}

TEST(Regressor, IgnoresUselessFeature) {
  Rng rng(4);
  Dataset data;
  data.feature_names = {"useful", "noise"};
  for (int i = 0; i < 400; ++i) {
    const double x = rng.uniform(0.0, 1.0);
    data.add({x, rng.uniform(0.0, 1.0)}, x > 0.5 ? 1.0 : 0.0);
  }
  DecisionTreeRegressor tree(loose_config());
  tree.fit(data);
  const auto importances = tree.feature_importances();
  ASSERT_EQ(importances.size(), 2u);
  EXPECT_GT(importances[0], 0.9);
  EXPECT_NEAR(importances[0] + importances[1], 1.0, 1e-9);
}

TEST(Regressor, RespectsMaxDepth) {
  Rng rng(5);
  Dataset data;
  data.feature_names = {"x"};
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform(0.0, 1.0);
    data.add({x}, x * x);
  }
  TreeConfig config = loose_config();
  config.max_depth = 3;
  DecisionTreeRegressor tree(config);
  tree.fit(data);
  EXPECT_LE(tree.depth(), 3);
}

TEST(Regressor, ConstantTargetSingleLeaf) {
  Dataset data;
  data.feature_names = {"x"};
  for (int i = 0; i < 30; ++i) data.add({static_cast<double>(i)}, 7.0);
  DecisionTreeRegressor tree(loose_config());
  tree.fit(data);
  EXPECT_EQ(tree.node_count(), 1u);
  EXPECT_DOUBLE_EQ(tree.predict({{999.0}}), 7.0);
}

// Property: deeper trees never fit the training set worse.
class DepthSweep : public ::testing::TestWithParam<int> {};

TEST_P(DepthSweep, TrainErrorNonIncreasingInDepth) {
  Rng rng(6);
  Dataset data;
  data.feature_names = {"x", "y"};
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform(0.0, 1.0);
    const double y = rng.uniform(0.0, 1.0);
    data.add({x, y}, std::sin(6.0 * x) + y * y + 3.0);
  }
  auto train_mape = [&](int depth) {
    TreeConfig config = loose_config();
    config.max_depth = depth;
    DecisionTreeRegressor tree(config);
    tree.fit(data);
    return wild5g::stats::mape_percent(data.targets, tree.predict_all(data));
  };
  const int depth = GetParam();
  EXPECT_LE(train_mape(depth + 1), train_mape(depth) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Depths, DepthSweep, ::testing::Values(1, 2, 3, 4, 6));

TEST(Classifier, SeparatesTwoClusters) {
  Rng rng(7);
  Dataset data;
  data.feature_names = {"x", "y"};
  for (int i = 0; i < 300; ++i) {
    const bool cls = rng.bernoulli(0.5);
    data.add({rng.normal(cls ? 3.0 : -3.0, 0.5), rng.normal(0.0, 1.0)},
             cls ? 1.0 : 0.0);
  }
  DecisionTreeClassifier tree(loose_config());
  tree.fit(data);
  EXPECT_EQ(tree.predict({{3.0, 0.0}}), 1);
  EXPECT_EQ(tree.predict({{-3.0, 0.0}}), 0);
  EXPECT_GT(tree.accuracy(data), 0.99);
}

TEST(Classifier, MulticlassWorks) {
  Rng rng(8);
  Dataset data;
  data.feature_names = {"x"};
  for (int i = 0; i < 600; ++i) {
    const double x = rng.uniform(0.0, 3.0);
    data.add({x}, std::floor(x));
  }
  DecisionTreeClassifier tree(loose_config());
  tree.fit(data);
  EXPECT_EQ(tree.predict({{0.5}}), 0);
  EXPECT_EQ(tree.predict({{1.5}}), 1);
  EXPECT_EQ(tree.predict({{2.5}}), 2);
}

TEST(Classifier, RejectsNegativeLabels) {
  Dataset data;
  data.feature_names = {"x"};
  data.add({0.0}, -1.0);
  DecisionTreeClassifier tree;
  EXPECT_THROW(tree.fit(data), wild5g::Error);
}

TEST(Classifier, RejectsFractionalLabels) {
  Dataset data;
  data.feature_names = {"x"};
  data.add({0.0}, 0.5);
  DecisionTreeClassifier tree;
  EXPECT_THROW(tree.fit(data), wild5g::Error);
}

TEST(Classifier, DescribeMentionsFeaturesAndClasses) {
  Rng rng(9);
  Dataset data;
  data.feature_names = {"page_size"};
  for (int i = 0; i < 200; ++i) {
    const double x = rng.uniform(0.0, 10.0);
    data.add({x}, x > 5.0 ? 1.0 : 0.0);
  }
  DecisionTreeClassifier tree(loose_config());
  tree.fit(data);
  const std::vector<std::string> features{"page_size"};
  const std::vector<std::string> classes{"Use 4G", "Use 5G"};
  const auto text = tree.describe(features, classes);
  EXPECT_NE(text.find("page_size"), std::string::npos);
  EXPECT_NE(text.find("Use 4G"), std::string::npos);
  EXPECT_NE(text.find("Use 5G"), std::string::npos);
}

TEST(Classifier, GiniImportanceSumsToOne) {
  Rng rng(10);
  Dataset data;
  data.feature_names = {"a", "b", "c"};
  for (int i = 0; i < 300; ++i) {
    const double a = rng.uniform(0.0, 1.0);
    const double b = rng.uniform(0.0, 1.0);
    data.add({a, b, rng.uniform(0.0, 1.0)},
             (a > 0.5 || b > 0.8) ? 1.0 : 0.0);
  }
  DecisionTreeClassifier tree(loose_config());
  tree.fit(data);
  const auto importances = tree.feature_importances();
  double total = 0.0;
  for (double v : importances) total += v;
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_GT(importances[0], importances[2]);
}
