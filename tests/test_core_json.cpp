// Tests for the JSON document model (writer + parser) and the golden
// comparator that the bench regression gate is built on.
#include "core/json.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "core/error.h"
#include "core/golden.h"

namespace json = wild5g::json;
namespace golden = wild5g::golden;
using wild5g::Error;

namespace {

json::Value sample_document() {
  json::Value doc = json::Value::object();
  doc.set("bench", "fig99_example");
  doc.set("seed", 20210823);
  json::Value tolerance = json::Value::object();
  tolerance.set("rel", 1e-6);
  tolerance.set("abs", 1e-9);
  doc.set("tolerance", std::move(tolerance));
  json::Value tables = json::Value::array();
  json::Value table = json::Value::object();
  table.set("title", "example table");
  json::Value header = json::Value::array();
  header.push_back("setting");
  header.push_back("total");
  table.set("header", std::move(header));
  json::Value rows = json::Value::array();
  json::Value row = json::Value::array();
  row.push_back("SA only");
  row.push_back("13.0");
  rows.push_back(std::move(row));
  table.set("rows", std::move(rows));
  tables.push_back(std::move(table));
  doc.set("tables", std::move(tables));
  json::Value metrics = json::Value::object();
  metrics.set("stall_pct", 4.25);
  doc.set("metrics", std::move(metrics));
  return doc;
}

}  // namespace

TEST(Json, DumpParseRoundTripIsByteIdentical) {
  const std::string once = json::dump(sample_document());
  const std::string twice = json::dump(json::parse(once));
  EXPECT_EQ(once, twice);
}

TEST(Json, RoundTripPreservesValuesAndOrder) {
  const json::Value doc = json::parse(json::dump(sample_document()));
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.as_object()[0].key, "bench");  // insertion order kept
  EXPECT_EQ(doc.find("bench")->as_string(), "fig99_example");
  EXPECT_DOUBLE_EQ(doc.find("seed")->as_number(), 20210823.0);
  EXPECT_DOUBLE_EQ(doc.find("metrics")->find("stall_pct")->as_number(), 4.25);
  const json::Value& table = doc.find("tables")->as_array().at(0);
  EXPECT_EQ(table.find("rows")->as_array()[0].as_array()[1].as_string(),
            "13.0");
}

TEST(Json, NumberFormattingIsShortestRoundTrip) {
  EXPECT_EQ(json::format_number(13.5), "13.5");
  EXPECT_EQ(json::format_number(0.0), "0");
  EXPECT_EQ(json::format_number(-3.0), "-3");
  EXPECT_EQ(json::format_number(1e-6), "1e-06");
  // 0.1 has no short exact decimal form; whatever is printed must parse
  // back to the identical double.
  const double value = 0.1;
  EXPECT_EQ(json::parse(json::format_number(value)).as_number(), value);
}

TEST(Json, NonFiniteNumbersRejectedOnWrite) {
  EXPECT_THROW((void)json::format_number(std::nan("")), Error);
  EXPECT_THROW((void)json::format_number(1.0 / 0.0), Error);
  json::Value doc = json::Value::object();
  doc.set("bad", std::nan(""));
  EXPECT_THROW((void)json::dump(doc), Error);
}

TEST(Json, StringEscapingRoundTrips) {
  json::Value doc = json::Value::object();
  doc.set("s", "quote \" backslash \\ newline \n tab \t ctrl \x01 end");
  const json::Value back = json::parse(json::dump(doc));
  EXPECT_EQ(back.find("s")->as_string(), doc.find("s")->as_string());
}

TEST(Json, ParsesEscapesAndLiterals) {
  const json::Value v =
      json::parse(R"({"a": [true, false, null, -1.5e2], "u": "\u0041"})");
  EXPECT_TRUE(v.find("a")->as_array()[0].as_bool());
  EXPECT_FALSE(v.find("a")->as_array()[1].as_bool());
  EXPECT_TRUE(v.find("a")->as_array()[2].is_null());
  EXPECT_DOUBLE_EQ(v.find("a")->as_array()[3].as_number(), -150.0);
  EXPECT_EQ(v.find("u")->as_string(), "A");
}

TEST(Json, MalformedInputsRejectedCleanly) {
  const char* cases[] = {
      "",                      // empty
      "{",                     // truncated object
      "[1, 2",                 // truncated array
      "\"abc",                 // unterminated string
      "{\"a\": }",             // missing value
      "{\"a\": 1,}",           // would need a key after comma
      "1.5 garbage",           // trailing garbage
      "nan",                   // not a JSON literal
      "inf",                   // not a JSON literal
      "-",                     // sign without digits
      "1.",                    // missing fraction digits
      "2e",                    // missing exponent digits
      "1e999",                 // overflows to infinity
      "\"bad \\x escape\"",    // invalid escape
      "\"trunc \\u12\"",       // truncated \u escape
      "\"\\ud800\"",           // surrogate escape
      "\"ctrl \x01\"",         // raw control character
  };
  for (const char* text : cases) {
    EXPECT_THROW((void)json::parse(text), Error) << "input: " << text;
  }
}

TEST(Json, DeeplyNestedInputRejected) {
  std::string text(1000, '[');
  EXPECT_THROW((void)json::parse(text), Error);
}

TEST(GoldenCompare, IdenticalDocumentsHaveNoDrift) {
  const json::Value doc = sample_document();
  EXPECT_TRUE(golden::compare(doc, doc).empty());
}

TEST(GoldenCompare, WithinToleranceMatches) {
  json::Value baseline = sample_document();
  json::Value fresh = sample_document();
  // stall_pct: tol is rel 1e-6 on 4.25.
  fresh.set("metrics", [] {
    json::Value m = json::Value::object();
    m.set("stall_pct", 4.25 * (1.0 + 5e-7));
    return m;
  }());
  EXPECT_TRUE(golden::compare(baseline, fresh).empty());
}

TEST(GoldenCompare, BeyondToleranceDriftsWithPath) {
  json::Value baseline = sample_document();
  json::Value fresh = sample_document();
  json::Value m = json::Value::object();
  m.set("stall_pct", 4.30);
  fresh.set("metrics", std::move(m));
  const auto drifts = golden::compare(baseline, fresh);
  ASSERT_EQ(drifts.size(), 1u);
  EXPECT_EQ(drifts[0].path, "metrics.stall_pct");
  EXPECT_NE(drifts[0].message.find("4.25"), std::string::npos);
  EXPECT_NE(drifts[0].message.find("4.3"), std::string::npos);
}

TEST(GoldenCompare, NumericTableCellsCompareUnderTolerance) {
  const json::Value baseline = sample_document();
  // Rewrite the "13.0" cell beyond tolerance -> drift at the cell's path.
  const std::string text = json::dump(sample_document());
  const json::Value perturbed = json::parse(
      std::string(text).replace(text.find("\"13.0\""), 6, "\"13.2\""));
  const auto drifts = golden::compare(baseline, perturbed);
  ASSERT_EQ(drifts.size(), 1u);
  EXPECT_EQ(drifts[0].path, "tables[0].rows[0][1]");
}

TEST(GoldenCompare, PerMetricToleranceOverride) {
  json::Value baseline = sample_document();
  json::Value overrides = json::Value::object();
  json::Value loose = json::Value::object();
  loose.set("rel", 0.5);
  overrides.set("stall_pct", std::move(loose));
  baseline.set("tolerances", std::move(overrides));
  json::Value fresh = sample_document();
  json::Value m = json::Value::object();
  m.set("stall_pct", 5.0);  // +17.6%: inside the 50% override
  fresh.set("metrics", std::move(m));
  // The fresh doc differs in the "tolerances" member too; only compare the
  // metric subtree outcome: expect exactly the structural drift for the
  // missing "tolerances" member, not a stall_pct drift.
  const auto drifts = golden::compare(baseline, fresh);
  ASSERT_EQ(drifts.size(), 1u);
  EXPECT_EQ(drifts[0].path, "tolerances");
}

TEST(GoldenCompare, StructuralChangesAreDrifts) {
  const json::Value baseline = sample_document();
  // Dropped metric.
  json::Value fresh = sample_document();
  fresh.set("metrics", json::Value::object());
  auto drifts = golden::compare(baseline, fresh);
  ASSERT_EQ(drifts.size(), 1u);
  EXPECT_EQ(drifts[0].path, "metrics.stall_pct");
  EXPECT_EQ(drifts[0].message, "missing in fresh run");
  // New unexpected metric.
  fresh = sample_document();
  json::Value m = json::Value::object();
  m.set("stall_pct", 4.25);
  m.set("surprise", 1.0);
  fresh.set("metrics", std::move(m));
  drifts = golden::compare(baseline, fresh);
  ASSERT_EQ(drifts.size(), 1u);
  EXPECT_EQ(drifts[0].message, "unexpected new field in fresh run");
  // Type change.
  fresh = sample_document();
  fresh.set("bench", 7.0);
  drifts = golden::compare(baseline, fresh);
  ASSERT_EQ(drifts.size(), 1u);
  EXPECT_NE(drifts[0].message.find("type changed"), std::string::npos);
}

TEST(GoldenCompare, ArrayLengthChangeIsDrift) {
  const json::Value baseline = sample_document();
  // Drop the only table row.
  json::Value fresh = sample_document();
  json::Value table = fresh.find("tables")->as_array()[0];
  table.set("rows", json::Value::array());
  json::Value tables = json::Value::array();
  tables.push_back(std::move(table));
  fresh.set("tables", std::move(tables));
  const auto drifts = golden::compare(baseline, fresh);
  ASSERT_FALSE(drifts.empty());
  EXPECT_EQ(drifts[0].path, "tables[0].rows");
  EXPECT_NE(drifts[0].message.find("length changed"), std::string::npos);
}

TEST(GoldenCompare, DocumentToleranceDefaultsApply)
{
  json::Value doc = json::Value::object();
  const auto tol = golden::document_tolerance(doc);
  EXPECT_DOUBLE_EQ(tol.rel, 1e-6);
  EXPECT_DOUBLE_EQ(tol.abs, 1e-9);
}
