// Video session: stream a 4K video over one generated mmWave trace with
// robustMPC, then again with the 5G-aware interface selector, and compare
// the per-chunk decisions, stalls, and radio energy.
//
//   ./build/examples/video_session [trace-index]
#include <iomanip>
#include <iostream>

#include "abr/interface_selection.h"
#include "abr/video.h"
#include "traces/traces.h"

using namespace wild5g;

int main(int argc, char** argv) {
  const std::size_t trace_index =
      argc > 1 ? std::stoul(argv[1]) : 0;

  Rng rng(20210823);
  auto c5 = traces::lumos5g_mmwave_config();
  const auto traces_5g = traces::generate_traces(c5, rng);
  Rng rng2(20210824);
  auto c4 = traces::lumos5g_lte_config();
  const auto traces_4g = traces::generate_traces(c4, rng2);
  const auto& t5 = traces_5g.at(trace_index);
  const auto& t4 = traces_4g.at(trace_index % traces_4g.size());

  std::cout << "Trace " << t5.id << ": median "
            << t5.median() << " Mbps, mean " << t5.mean() << " Mbps\n\n";

  const auto video = abr::video_ladder_5g();
  abr::SessionOptions options;
  options.chunk_count = 60;

  // robustMPC, pinned to 5G.
  abr::HarmonicMeanPredictor predictor;
  abr::ModelPredictiveAbr robust(abr::ModelPredictiveAbr::Variant::kRobust,
                                 predictor);
  abr::TraceSource source(t5);
  const auto session = abr::stream(video, source, robust, options);

  std::cout << "robustMPC on 5G only:\n"
            << "  avg bitrate " << session.avg_bitrate_mbps << " Mbps ("
            << 100.0 * session.normalized_bitrate(video) << "% of top), stall "
            << session.total_stall_s << " s ("
            << session.stall_percent() << "%)\n";
  std::cout << "  per-chunk tracks: ";
  for (const auto& chunk : session.chunks) std::cout << chunk.track;
  std::cout << "\n\n";

  // The 5G-aware selector (Sec. 5.4).
  options.allow_abandonment = true;
  abr::InterfaceSelectionConfig selection;
  const auto device = power::DevicePowerProfile::s20u();
  const auto only =
      abr::stream_5g_only(video, t5, options, selection, device);
  const auto aware =
      abr::stream_5g_aware(video, t5, t4, options, selection, device);

  std::cout << "5G-only fastMPC:  stall " << std::setprecision(3)
            << only.session.total_stall_s << " s, energy " << only.energy_j
            << " J\n";
  std::cout << "5G-aware fastMPC: stall " << aware.session.total_stall_s
            << " s, energy " << aware.energy_j << " J, "
            << aware.switch_count << " interface switches\n";
  std::cout << "  interface per 30 s: ";
  for (std::size_t s = 0; s < aware.per_second_interface.size(); s += 30) {
    std::cout << (aware.per_second_interface[s] == abr::Interface::k5g
                      ? "[5G]"
                      : "[4G]");
  }
  std::cout << "\n";
  return 0;
}
