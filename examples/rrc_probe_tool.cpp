// RRC probe tool: run RRC-Probe against any of the six networks — either
// the closed-form model or the live discrete-event machine — and print the
// inferred state machine.
//
//   ./build/examples/rrc_probe_tool ["network name"] [--des]
//   e.g. ./build/examples/rrc_probe_tool "T-Mobile SA low-band" --des
#include <iostream>
#include <string>

#include "rrc/live_machine.h"
#include "rrc/probe.h"

using namespace wild5g;

int main(int argc, char** argv) {
  std::string name = "Verizon NSA mmWave";
  bool use_des = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--des") {
      use_des = true;
    } else {
      name = arg;
    }
  }

  const rrc::RrcProfile* profile = nullptr;
  try {
    profile = &rrc::profile_by_name(name);
  } catch (const Error&) {
    std::cerr << "unknown network '" << name << "'. Options:\n";
    for (const auto& p : rrc::table7_profiles()) {
      std::cerr << "  \"" << p.config.name << "\"\n";
    }
    return 2;
  }

  const auto& config = profile->config;
  const auto schedule = rrc::schedule_for(config);
  std::cout << "Probing " << config.name << " ("
            << (use_des ? "discrete-event exchange" : "closed-form model")
            << "): gaps " << schedule.min_gap_ms / 1000.0 << ".."
            << schedule.max_gap_ms / 1000.0 << " s, "
            << schedule.repeats << " repeats per gap\n";

  Rng rng(1234);
  const auto samples = use_des ? rrc::run_probe_des(config, schedule, rng)
                               : rrc::run_probe(config, schedule, rng);
  const auto inferred = rrc::infer_rrc_parameters(samples);

  std::cout << "\nInferred state machine (" << samples.size()
            << " probe packets):\n";
  std::cout << "  UE-inactivity (tail) timer : " << inferred.tail_timer_ms
            << " ms   (configured " << config.inactivity_timer_ms << ")\n";
  if (inferred.mid_plateau_end_ms) {
    const char* label = config.is_sa() ? "RRC_INACTIVE ends"
                                       : "LTE anchor tail ends";
    std::cout << "  " << label << "       : " << *inferred.mid_plateau_end_ms
              << " ms\n";
  }
  std::cout << "  Long-DRX cycle estimate    : "
            << inferred.long_drx_estimate_ms << " ms   (configured "
            << config.long_drx_cycle_ms << ")\n";
  std::cout << "  Idle-DRX cycle estimate    : "
            << inferred.idle_drx_estimate_ms << " ms   (configured "
            << config.idle_drx_cycle_ms << ")\n";
  std::cout << "  Promotion delay estimate   : "
            << inferred.promotion_estimate_ms << " ms\n";
  std::cout << "  RTT levels (connected/mid/idle): "
            << inferred.connected_level_rtt_ms << " / "
            << (inferred.mid_level_rtt_ms
                    ? std::to_string(*inferred.mid_level_rtt_ms)
                    : std::string("-"))
            << " / " << inferred.idle_level_rtt_ms << " ms\n";
  return 0;
}
