// Web advisor: train the Sec. 6.2 interface selectors (M1..M5) and query
// them for a few example websites — which radio should load this page?
//
//   ./build/examples/web_advisor
#include <iostream>

#include "web/selector.h"

using namespace wild5g;

int main() {
  std::cout << "Measuring a 600-site corpus on both radios...\n";
  Rng rng(99);
  const auto corpus = web::generate_corpus(600, rng);
  const auto device = power::DevicePowerProfile::s10();
  auto measurements = web::measure_corpus(corpus, 3, device, rng);
  rng.shuffle(std::span<web::SiteMeasurement>(measurements));
  const auto train_count = static_cast<std::size_t>(0.7 * measurements.size());
  const std::span<const web::SiteMeasurement> train(measurements.data(),
                                                    train_count);
  const std::span<const web::SiteMeasurement> test(
      measurements.data() + train_count, measurements.size() - train_count);

  // A few archetypal pages to advise on.
  std::vector<web::Website> pages(3);
  pages[0].domain = "text-blog.example";       // tiny, static
  pages[0].object_count = 12;
  pages[0].image_count = 3;
  pages[0].total_page_size_mb = 0.4;
  pages[0].dynamic_object_count = 1;
  pages[0].dynamic_size_fraction = 0.05;
  pages[1].domain = "news-portal.example";     // heavy, ad-laden
  pages[1].object_count = 450;
  pages[1].image_count = 220;
  pages[1].video_count = 2;
  pages[1].total_page_size_mb = 18.0;
  pages[1].dynamic_object_count = 380;
  pages[1].dynamic_size_fraction = 0.8;
  pages[2].domain = "photo-gallery.example";   // big but static
  pages[2].object_count = 90;
  pages[2].image_count = 80;
  pages[2].total_page_size_mb = 12.0;
  pages[2].dynamic_object_count = 5;
  pages[2].dynamic_size_fraction = 0.04;

  for (const auto& weights : web::paper_qoe_models()) {
    web::InterfaceSelector selector(weights);
    Rng train_rng(100);
    selector.train(train, train_rng);
    const auto outcome = selector.outcome(test);
    std::cout << "\n" << weights.id << " (" << weights.description
              << ", alpha=" << weights.alpha << " beta=" << weights.beta
              << "): test accuracy "
              << 100.0 * selector.accuracy(test) << "%, energy saving "
              << outcome.energy_saving_percent << "%\n";
    for (const auto& page : pages) {
      std::cout << "  " << page.domain << " -> "
                << (selector.predict(page) == web::RadioChoice::kUse5g
                        ? "use mmWave 5G"
                        : "use 4G")
                << "\n";
    }
  }

  std::cout << "\nM1's learned tree:\n";
  web::InterfaceSelector m1(web::paper_qoe_models()[0]);
  Rng train_rng(100);
  m1.train(train, train_rng);
  std::cout << m1.describe_tree();
  return 0;
}
