// Power model tool: run a walking campaign, fit the TH+SS power model, and
// compare against the TH-only and SS-only ablations (the Sec. 4.5 method),
// then use the model to cost out an application workload.
//
//   ./build/examples/power_model_tool [network]
//   where network is one of: mmwave (default), lowband, sa
#include <iostream>
#include <string>

#include "power/campaign.h"
#include "power/fitting.h"
#include "radio/ue.h"

using namespace wild5g;

int main(int argc, char** argv) {
  const std::string choice = argc > 1 ? argv[1] : "mmwave";
  power::WalkingCampaignConfig campaign;
  campaign.ue = radio::galaxy_s20u();
  if (choice == "lowband") {
    campaign.network = {radio::Carrier::kVerizon, radio::Band::kNrLowBand,
                        radio::DeploymentMode::kNsa};
  } else if (choice == "sa") {
    campaign.network = {radio::Carrier::kTMobile, radio::Band::kNrLowBand,
                        radio::DeploymentMode::kSa};
  } else {
    campaign.network = {radio::Carrier::kVerizon, radio::Band::kNrMmWave,
                        radio::DeploymentMode::kNsa};
  }

  std::cout << "Walking campaign on " << radio::to_string(campaign.network)
            << " (20 min, 10 Hz logging + 5 kHz power)...\n";
  const auto device = power::DevicePowerProfile::s20u();
  Rng rng(7);
  const auto samples = power::run_walking_campaign(campaign, device, rng);

  std::cout << "Fitting decision-tree power models (70/30 split):\n";
  for (const auto features :
       {power::FeatureSet::kThroughputAndSignal,
        power::FeatureSet::kThroughputOnly, power::FeatureSet::kSignalOnly}) {
    power::PowerModelFit fit(features);
    Rng split_rng(8);
    fit.fit(samples, split_rng);
    std::cout << "  " << power::to_string(features) << ": MAPE "
              << fit.test_mape_percent() << "%\n";
  }

  // Cost out a bursty application with the TH+SS model.
  power::PowerModelFit model(power::FeatureSet::kThroughputAndSignal);
  Rng split_rng(8);
  model.fit(samples, split_rng);
  std::vector<power::PowerModelFit::UsageSlot> workload;
  for (int s = 0; s < 60; ++s) {
    const bool burst = s % 12 < 4;
    workload.push_back({burst ? 600.0 : 2.0, burst ? 18.0 : 0.2, -82.0, 1.0});
  }
  std::cout << "60 s bursty workload (4/12 duty at 600 Mbps): "
            << model.estimate_energy_j(workload) << " J estimated\n";
  return 0;
}
