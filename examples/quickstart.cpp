// Quickstart: the wild5g public API in one sitting.
//
// Creates a UE on Verizon's NSA mmWave network, runs a speedtest against
// the nearest carrier-hosted server, infers the network's RRC timers with
// RRC-Probe, and estimates the radio power of a bulk download.
//
//   ./build/examples/quickstart
#include <iostream>

#include "geo/geo.h"
#include "net/speedtest.h"
#include "power/power_model.h"
#include "radio/ue.h"
#include "rrc/probe.h"

using namespace wild5g;

int main() {
  // 1. A phone on a network, standing in Minneapolis with LoS to a panel.
  net::SpeedtestConfig config;
  config.network = {radio::Carrier::kVerizon, radio::Band::kNrMmWave,
                    radio::DeploymentMode::kNsa};
  config.ue = radio::galaxy_s20u();
  config.ue_location = geo::minneapolis().point;

  // 2. Speedtest against the nearest carrier-hosted server.
  net::SpeedtestHarness harness(config);
  const auto servers = net::carrier_server_pool();
  Rng rng(42);
  const auto result =
      harness.peak_of(servers.front(), net::ConnectionMode::kMultiple,
                      /*repeats=*/5, rng);
  std::cout << "Speedtest vs " << servers.front().name << ":\n"
            << "  downlink " << result.downlink_mbps << " Mbps, uplink "
            << result.uplink_mbps << " Mbps, RTT " << result.rtt_ms
            << " ms\n\n";

  // 3. Infer the network's RRC timers without root or chipset diagnostics.
  const auto& profile = rrc::profile_by_name("Verizon NSA mmWave");
  Rng probe_rng(43);
  const auto samples = rrc::run_probe(
      profile.config, rrc::schedule_for(profile.config), probe_rng);
  const auto inferred = rrc::infer_rrc_parameters(samples);
  std::cout << "RRC-Probe on " << profile.config.name << ":\n"
            << "  UE-inactivity (tail) timer ~ " << inferred.tail_timer_ms
            << " ms\n"
            << "  5G promotion delay ~ " << inferred.promotion_estimate_ms
            << " ms\n\n";

  // 4. What does a 1.5 Gbps download cost in radio power on this phone?
  const auto device = power::DevicePowerProfile::s20u();
  const double watts =
      device.transfer_power_mw(power::RailKey::kNsaMmWave, 1500.0, 40.0,
                               -78.0) /
      1000.0;
  std::cout << "1.5 Gbps mmWave download burns ~" << watts
            << " W of radio power ("
            << power::efficiency_uj_per_bit(watts * 1000.0, 1500.0)
            << " uJ/bit)\n";
  return 0;
}
