// Drive test: reproduce a Sec. 3.3-style handoff survey interactively.
//
// Drives the 10 km route under each band configuration and prints the live
// handoff log plus per-configuration summaries, like watching 5G Tracker
// from the passenger seat.
//
//   ./build/examples/drive_test [seed]
#include <iomanip>
#include <iostream>

#include "mobility/drive.h"
#include "mobility/route.h"

using namespace wild5g;

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::stoull(argv[1]) : 7;

  const std::vector<mobility::BandSetting> settings = {
      mobility::BandSetting::kSaOnly, mobility::BandSetting::kNsaPlusLte,
      mobility::BandSetting::kLteOnly, mobility::BandSetting::kSaPlusLte,
      mobility::BandSetting::kAllBands};

  for (const auto setting : settings) {
    Rng rng(seed);
    const auto route = mobility::driving_route(rng);
    const auto result = mobility::simulate_drive(setting, route, {}, rng);

    std::cout << "=== " << mobility::to_string(setting) << " ===\n";
    std::cout << "  " << result.total_handoffs() << " handoffs ("
              << result.horizontal_handoffs() << " horizontal, "
              << result.vertical_handoffs() << " vertical)\n";
    std::cout << "  time on 4G "
              << 100.0 * result.time_fraction(mobility::ActiveRadio::kLte)
              << "%, NSA-5G "
              << 100.0 * result.time_fraction(mobility::ActiveRadio::kNsa5g)
              << "%, SA-5G "
              << 100.0 * result.time_fraction(mobility::ActiveRadio::kSa5g)
              << "%\n";

    // Live log of the first vertical handoffs.
    int shown = 0;
    for (const auto& handoff : result.handoffs) {
      if (!handoff.vertical) continue;
      if (++shown > 8) break;
      std::cout << "  t=" << std::setw(5) << std::fixed
                << std::setprecision(1) << handoff.t_s << "s  "
                << mobility::to_string(handoff.from) << " -> "
                << mobility::to_string(handoff.to) << "\n";
    }
    std::cout << "\n";
  }
  return 0;
}
