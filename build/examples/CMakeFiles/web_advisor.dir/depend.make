# Empty dependencies file for web_advisor.
# This may be replaced when dependencies are built.
