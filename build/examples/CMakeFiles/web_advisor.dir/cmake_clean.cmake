file(REMOVE_RECURSE
  "CMakeFiles/web_advisor.dir/web_advisor.cpp.o"
  "CMakeFiles/web_advisor.dir/web_advisor.cpp.o.d"
  "web_advisor"
  "web_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/web_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
