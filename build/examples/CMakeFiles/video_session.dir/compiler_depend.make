# Empty compiler generated dependencies file for video_session.
# This may be replaced when dependencies are built.
