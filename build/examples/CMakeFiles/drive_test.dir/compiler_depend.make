# Empty compiler generated dependencies file for drive_test.
# This may be replaced when dependencies are built.
