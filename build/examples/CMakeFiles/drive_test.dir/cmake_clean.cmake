file(REMOVE_RECURSE
  "CMakeFiles/drive_test.dir/drive_test.cpp.o"
  "CMakeFiles/drive_test.dir/drive_test.cpp.o.d"
  "drive_test"
  "drive_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drive_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
