# Empty dependencies file for rrc_probe_tool.
# This may be replaced when dependencies are built.
