file(REMOVE_RECURSE
  "CMakeFiles/rrc_probe_tool.dir/rrc_probe_tool.cpp.o"
  "CMakeFiles/rrc_probe_tool.dir/rrc_probe_tool.cpp.o.d"
  "rrc_probe_tool"
  "rrc_probe_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrc_probe_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
