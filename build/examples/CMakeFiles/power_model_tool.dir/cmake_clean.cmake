file(REMOVE_RECURSE
  "CMakeFiles/power_model_tool.dir/power_model_tool.cpp.o"
  "CMakeFiles/power_model_tool.dir/power_model_tool.cpp.o.d"
  "power_model_tool"
  "power_model_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_model_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
