# Empty compiler generated dependencies file for power_model_tool.
# This may be replaced when dependencies are built.
