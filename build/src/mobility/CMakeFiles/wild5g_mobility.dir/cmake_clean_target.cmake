file(REMOVE_RECURSE
  "libwild5g_mobility.a"
)
