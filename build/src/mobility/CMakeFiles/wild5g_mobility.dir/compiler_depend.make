# Empty compiler generated dependencies file for wild5g_mobility.
# This may be replaced when dependencies are built.
