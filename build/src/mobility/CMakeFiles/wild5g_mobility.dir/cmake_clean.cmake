file(REMOVE_RECURSE
  "CMakeFiles/wild5g_mobility.dir/drive.cpp.o"
  "CMakeFiles/wild5g_mobility.dir/drive.cpp.o.d"
  "CMakeFiles/wild5g_mobility.dir/route.cpp.o"
  "CMakeFiles/wild5g_mobility.dir/route.cpp.o.d"
  "libwild5g_mobility.a"
  "libwild5g_mobility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wild5g_mobility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
