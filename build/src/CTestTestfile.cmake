# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("core")
subdirs("geo")
subdirs("ml")
subdirs("sim")
subdirs("radio")
subdirs("mobility")
subdirs("rrc")
subdirs("power")
subdirs("transport")
subdirs("net")
subdirs("traces")
subdirs("abr")
subdirs("web")
