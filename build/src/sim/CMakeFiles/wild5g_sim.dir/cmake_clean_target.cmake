file(REMOVE_RECURSE
  "libwild5g_sim.a"
)
