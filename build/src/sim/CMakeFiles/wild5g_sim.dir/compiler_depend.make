# Empty compiler generated dependencies file for wild5g_sim.
# This may be replaced when dependencies are built.
