file(REMOVE_RECURSE
  "CMakeFiles/wild5g_sim.dir/simulator.cpp.o"
  "CMakeFiles/wild5g_sim.dir/simulator.cpp.o.d"
  "libwild5g_sim.a"
  "libwild5g_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wild5g_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
