file(REMOVE_RECURSE
  "libwild5g_power.a"
)
