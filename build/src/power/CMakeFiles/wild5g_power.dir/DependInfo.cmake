
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/power/campaign.cpp" "src/power/CMakeFiles/wild5g_power.dir/campaign.cpp.o" "gcc" "src/power/CMakeFiles/wild5g_power.dir/campaign.cpp.o.d"
  "/root/repo/src/power/fitting.cpp" "src/power/CMakeFiles/wild5g_power.dir/fitting.cpp.o" "gcc" "src/power/CMakeFiles/wild5g_power.dir/fitting.cpp.o.d"
  "/root/repo/src/power/monitor.cpp" "src/power/CMakeFiles/wild5g_power.dir/monitor.cpp.o" "gcc" "src/power/CMakeFiles/wild5g_power.dir/monitor.cpp.o.d"
  "/root/repo/src/power/power_model.cpp" "src/power/CMakeFiles/wild5g_power.dir/power_model.cpp.o" "gcc" "src/power/CMakeFiles/wild5g_power.dir/power_model.cpp.o.d"
  "/root/repo/src/power/waveform.cpp" "src/power/CMakeFiles/wild5g_power.dir/waveform.cpp.o" "gcc" "src/power/CMakeFiles/wild5g_power.dir/waveform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/wild5g_core.dir/DependInfo.cmake"
  "/root/repo/build/src/radio/CMakeFiles/wild5g_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/rrc/CMakeFiles/wild5g_rrc.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/wild5g_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/wild5g_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
