# Empty dependencies file for wild5g_power.
# This may be replaced when dependencies are built.
