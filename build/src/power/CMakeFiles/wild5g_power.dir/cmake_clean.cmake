file(REMOVE_RECURSE
  "CMakeFiles/wild5g_power.dir/campaign.cpp.o"
  "CMakeFiles/wild5g_power.dir/campaign.cpp.o.d"
  "CMakeFiles/wild5g_power.dir/fitting.cpp.o"
  "CMakeFiles/wild5g_power.dir/fitting.cpp.o.d"
  "CMakeFiles/wild5g_power.dir/monitor.cpp.o"
  "CMakeFiles/wild5g_power.dir/monitor.cpp.o.d"
  "CMakeFiles/wild5g_power.dir/power_model.cpp.o"
  "CMakeFiles/wild5g_power.dir/power_model.cpp.o.d"
  "CMakeFiles/wild5g_power.dir/waveform.cpp.o"
  "CMakeFiles/wild5g_power.dir/waveform.cpp.o.d"
  "libwild5g_power.a"
  "libwild5g_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wild5g_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
