file(REMOVE_RECURSE
  "CMakeFiles/wild5g_web.dir/page_load.cpp.o"
  "CMakeFiles/wild5g_web.dir/page_load.cpp.o.d"
  "CMakeFiles/wild5g_web.dir/selector.cpp.o"
  "CMakeFiles/wild5g_web.dir/selector.cpp.o.d"
  "CMakeFiles/wild5g_web.dir/website.cpp.o"
  "CMakeFiles/wild5g_web.dir/website.cpp.o.d"
  "libwild5g_web.a"
  "libwild5g_web.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wild5g_web.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
