# Empty compiler generated dependencies file for wild5g_web.
# This may be replaced when dependencies are built.
