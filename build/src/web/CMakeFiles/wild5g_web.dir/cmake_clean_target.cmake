file(REMOVE_RECURSE
  "libwild5g_web.a"
)
