file(REMOVE_RECURSE
  "CMakeFiles/wild5g_transport.dir/bbr.cpp.o"
  "CMakeFiles/wild5g_transport.dir/bbr.cpp.o.d"
  "CMakeFiles/wild5g_transport.dir/tcp.cpp.o"
  "CMakeFiles/wild5g_transport.dir/tcp.cpp.o.d"
  "libwild5g_transport.a"
  "libwild5g_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wild5g_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
