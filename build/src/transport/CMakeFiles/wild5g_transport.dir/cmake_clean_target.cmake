file(REMOVE_RECURSE
  "libwild5g_transport.a"
)
