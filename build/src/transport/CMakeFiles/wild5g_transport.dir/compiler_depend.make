# Empty compiler generated dependencies file for wild5g_transport.
# This may be replaced when dependencies are built.
