file(REMOVE_RECURSE
  "libwild5g_abr.a"
)
