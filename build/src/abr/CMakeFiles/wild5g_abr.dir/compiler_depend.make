# Empty compiler generated dependencies file for wild5g_abr.
# This may be replaced when dependencies are built.
