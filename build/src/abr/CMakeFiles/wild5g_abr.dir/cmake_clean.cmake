file(REMOVE_RECURSE
  "CMakeFiles/wild5g_abr.dir/algorithms.cpp.o"
  "CMakeFiles/wild5g_abr.dir/algorithms.cpp.o.d"
  "CMakeFiles/wild5g_abr.dir/interface_selection.cpp.o"
  "CMakeFiles/wild5g_abr.dir/interface_selection.cpp.o.d"
  "CMakeFiles/wild5g_abr.dir/pensieve_like.cpp.o"
  "CMakeFiles/wild5g_abr.dir/pensieve_like.cpp.o.d"
  "CMakeFiles/wild5g_abr.dir/predictor.cpp.o"
  "CMakeFiles/wild5g_abr.dir/predictor.cpp.o.d"
  "CMakeFiles/wild5g_abr.dir/session.cpp.o"
  "CMakeFiles/wild5g_abr.dir/session.cpp.o.d"
  "CMakeFiles/wild5g_abr.dir/video.cpp.o"
  "CMakeFiles/wild5g_abr.dir/video.cpp.o.d"
  "libwild5g_abr.a"
  "libwild5g_abr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wild5g_abr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
