file(REMOVE_RECURSE
  "CMakeFiles/wild5g_ml.dir/dataset.cpp.o"
  "CMakeFiles/wild5g_ml.dir/dataset.cpp.o.d"
  "CMakeFiles/wild5g_ml.dir/decision_tree.cpp.o"
  "CMakeFiles/wild5g_ml.dir/decision_tree.cpp.o.d"
  "CMakeFiles/wild5g_ml.dir/gbdt.cpp.o"
  "CMakeFiles/wild5g_ml.dir/gbdt.cpp.o.d"
  "libwild5g_ml.a"
  "libwild5g_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wild5g_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
