# Empty dependencies file for wild5g_ml.
# This may be replaced when dependencies are built.
