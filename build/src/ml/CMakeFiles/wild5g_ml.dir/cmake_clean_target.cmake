file(REMOVE_RECURSE
  "libwild5g_ml.a"
)
