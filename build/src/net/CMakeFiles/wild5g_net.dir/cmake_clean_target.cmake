file(REMOVE_RECURSE
  "libwild5g_net.a"
)
