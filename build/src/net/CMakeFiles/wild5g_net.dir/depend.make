# Empty dependencies file for wild5g_net.
# This may be replaced when dependencies are built.
