file(REMOVE_RECURSE
  "CMakeFiles/wild5g_net.dir/speedtest.cpp.o"
  "CMakeFiles/wild5g_net.dir/speedtest.cpp.o.d"
  "libwild5g_net.a"
  "libwild5g_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wild5g_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
