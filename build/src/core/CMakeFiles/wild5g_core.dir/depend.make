# Empty dependencies file for wild5g_core.
# This may be replaced when dependencies are built.
