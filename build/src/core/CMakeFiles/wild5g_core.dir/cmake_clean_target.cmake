file(REMOVE_RECURSE
  "libwild5g_core.a"
)
