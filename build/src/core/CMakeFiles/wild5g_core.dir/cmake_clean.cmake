file(REMOVE_RECURSE
  "CMakeFiles/wild5g_core.dir/stats.cpp.o"
  "CMakeFiles/wild5g_core.dir/stats.cpp.o.d"
  "CMakeFiles/wild5g_core.dir/table.cpp.o"
  "CMakeFiles/wild5g_core.dir/table.cpp.o.d"
  "libwild5g_core.a"
  "libwild5g_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wild5g_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
