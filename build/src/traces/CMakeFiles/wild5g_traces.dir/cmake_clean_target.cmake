file(REMOVE_RECURSE
  "libwild5g_traces.a"
)
