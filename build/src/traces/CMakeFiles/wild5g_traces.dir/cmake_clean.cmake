file(REMOVE_RECURSE
  "CMakeFiles/wild5g_traces.dir/trace_io.cpp.o"
  "CMakeFiles/wild5g_traces.dir/trace_io.cpp.o.d"
  "CMakeFiles/wild5g_traces.dir/traces.cpp.o"
  "CMakeFiles/wild5g_traces.dir/traces.cpp.o.d"
  "libwild5g_traces.a"
  "libwild5g_traces.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wild5g_traces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
