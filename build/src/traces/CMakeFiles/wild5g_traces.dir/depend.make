# Empty dependencies file for wild5g_traces.
# This may be replaced when dependencies are built.
