# Empty dependencies file for wild5g_rrc.
# This may be replaced when dependencies are built.
