file(REMOVE_RECURSE
  "libwild5g_rrc.a"
)
