
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rrc/live_machine.cpp" "src/rrc/CMakeFiles/wild5g_rrc.dir/live_machine.cpp.o" "gcc" "src/rrc/CMakeFiles/wild5g_rrc.dir/live_machine.cpp.o.d"
  "/root/repo/src/rrc/probe.cpp" "src/rrc/CMakeFiles/wild5g_rrc.dir/probe.cpp.o" "gcc" "src/rrc/CMakeFiles/wild5g_rrc.dir/probe.cpp.o.d"
  "/root/repo/src/rrc/rrc_config.cpp" "src/rrc/CMakeFiles/wild5g_rrc.dir/rrc_config.cpp.o" "gcc" "src/rrc/CMakeFiles/wild5g_rrc.dir/rrc_config.cpp.o.d"
  "/root/repo/src/rrc/state_machine.cpp" "src/rrc/CMakeFiles/wild5g_rrc.dir/state_machine.cpp.o" "gcc" "src/rrc/CMakeFiles/wild5g_rrc.dir/state_machine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/wild5g_core.dir/DependInfo.cmake"
  "/root/repo/build/src/radio/CMakeFiles/wild5g_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/wild5g_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
