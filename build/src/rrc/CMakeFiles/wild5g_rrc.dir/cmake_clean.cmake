file(REMOVE_RECURSE
  "CMakeFiles/wild5g_rrc.dir/live_machine.cpp.o"
  "CMakeFiles/wild5g_rrc.dir/live_machine.cpp.o.d"
  "CMakeFiles/wild5g_rrc.dir/probe.cpp.o"
  "CMakeFiles/wild5g_rrc.dir/probe.cpp.o.d"
  "CMakeFiles/wild5g_rrc.dir/rrc_config.cpp.o"
  "CMakeFiles/wild5g_rrc.dir/rrc_config.cpp.o.d"
  "CMakeFiles/wild5g_rrc.dir/state_machine.cpp.o"
  "CMakeFiles/wild5g_rrc.dir/state_machine.cpp.o.d"
  "libwild5g_rrc.a"
  "libwild5g_rrc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wild5g_rrc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
