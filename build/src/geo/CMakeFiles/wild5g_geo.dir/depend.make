# Empty dependencies file for wild5g_geo.
# This may be replaced when dependencies are built.
