file(REMOVE_RECURSE
  "libwild5g_geo.a"
)
