file(REMOVE_RECURSE
  "CMakeFiles/wild5g_geo.dir/geo.cpp.o"
  "CMakeFiles/wild5g_geo.dir/geo.cpp.o.d"
  "libwild5g_geo.a"
  "libwild5g_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wild5g_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
