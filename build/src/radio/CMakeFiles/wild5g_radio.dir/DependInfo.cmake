
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/radio/channel.cpp" "src/radio/CMakeFiles/wild5g_radio.dir/channel.cpp.o" "gcc" "src/radio/CMakeFiles/wild5g_radio.dir/channel.cpp.o.d"
  "/root/repo/src/radio/handoff.cpp" "src/radio/CMakeFiles/wild5g_radio.dir/handoff.cpp.o" "gcc" "src/radio/CMakeFiles/wild5g_radio.dir/handoff.cpp.o.d"
  "/root/repo/src/radio/types.cpp" "src/radio/CMakeFiles/wild5g_radio.dir/types.cpp.o" "gcc" "src/radio/CMakeFiles/wild5g_radio.dir/types.cpp.o.d"
  "/root/repo/src/radio/ue.cpp" "src/radio/CMakeFiles/wild5g_radio.dir/ue.cpp.o" "gcc" "src/radio/CMakeFiles/wild5g_radio.dir/ue.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/wild5g_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
