file(REMOVE_RECURSE
  "CMakeFiles/wild5g_radio.dir/channel.cpp.o"
  "CMakeFiles/wild5g_radio.dir/channel.cpp.o.d"
  "CMakeFiles/wild5g_radio.dir/handoff.cpp.o"
  "CMakeFiles/wild5g_radio.dir/handoff.cpp.o.d"
  "CMakeFiles/wild5g_radio.dir/types.cpp.o"
  "CMakeFiles/wild5g_radio.dir/types.cpp.o.d"
  "CMakeFiles/wild5g_radio.dir/ue.cpp.o"
  "CMakeFiles/wild5g_radio.dir/ue.cpp.o.d"
  "libwild5g_radio.a"
  "libwild5g_radio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wild5g_radio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
