file(REMOVE_RECURSE
  "libwild5g_radio.a"
)
