# Empty dependencies file for wild5g_radio.
# This may be replaced when dependencies are built.
