# Empty dependencies file for bench_fig18c_table4_interface.
# This may be replaced when dependencies are built.
