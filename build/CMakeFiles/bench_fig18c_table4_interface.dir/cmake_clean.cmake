file(REMOVE_RECURSE
  "CMakeFiles/bench_fig18c_table4_interface.dir/bench/bench_fig18c_table4_interface.cpp.o"
  "CMakeFiles/bench_fig18c_table4_interface.dir/bench/bench_fig18c_table4_interface.cpp.o.d"
  "bench/bench_fig18c_table4_interface"
  "bench/bench_fig18c_table4_interface.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18c_table4_interface.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
