file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_14_rsrp_power.dir/bench/bench_fig13_14_rsrp_power.cpp.o"
  "CMakeFiles/bench_fig13_14_rsrp_power.dir/bench/bench_fig13_14_rsrp_power.cpp.o.d"
  "bench/bench_fig13_14_rsrp_power"
  "bench/bench_fig13_14_rsrp_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_14_rsrp_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
