# Empty dependencies file for bench_fig13_14_rsrp_power.
# This may be replaced when dependencies are built.
