file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_9_sw_monitor.dir/bench/bench_table3_9_sw_monitor.cpp.o"
  "CMakeFiles/bench_table3_9_sw_monitor.dir/bench/bench_table3_9_sw_monitor.cpp.o.d"
  "bench/bench_table3_9_sw_monitor"
  "bench/bench_table3_9_sw_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_9_sw_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
