# Empty compiler generated dependencies file for bench_table3_9_sw_monitor.
# This may be replaced when dependencies are built.
