# Empty dependencies file for bench_fig01_02_latency_distance.
# This may be replaced when dependencies are built.
