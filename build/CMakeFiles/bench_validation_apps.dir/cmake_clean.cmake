file(REMOVE_RECURSE
  "CMakeFiles/bench_validation_apps.dir/bench/bench_validation_apps.cpp.o"
  "CMakeFiles/bench_validation_apps.dir/bench/bench_validation_apps.cpp.o.d"
  "bench/bench_validation_apps"
  "bench/bench_validation_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_validation_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
