# Empty dependencies file for bench_validation_apps.
# This may be replaced when dependencies are built.
