# Empty compiler generated dependencies file for bench_fig03_downlink_distance.
# This may be replaced when dependencies are built.
