file(REMOVE_RECURSE
  "CMakeFiles/bench_fig03_downlink_distance.dir/bench/bench_fig03_downlink_distance.cpp.o"
  "CMakeFiles/bench_fig03_downlink_distance.dir/bench/bench_fig03_downlink_distance.cpp.o.d"
  "bench/bench_fig03_downlink_distance"
  "bench/bench_fig03_downlink_distance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_downlink_distance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
