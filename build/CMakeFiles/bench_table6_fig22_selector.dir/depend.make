# Empty dependencies file for bench_table6_fig22_selector.
# This may be replaced when dependencies are built.
