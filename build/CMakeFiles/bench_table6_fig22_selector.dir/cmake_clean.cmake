file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_fig22_selector.dir/bench/bench_table6_fig22_selector.cpp.o"
  "CMakeFiles/bench_table6_fig22_selector.dir/bench/bench_table6_fig22_selector.cpp.o.d"
  "bench/bench_table6_fig22_selector"
  "bench/bench_table6_fig22_selector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_fig22_selector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
