# Empty dependencies file for bench_fig15_16_power_models.
# This may be replaced when dependencies are built.
