file(REMOVE_RECURSE
  "CMakeFiles/bench_extension_http2.dir/bench/bench_extension_http2.cpp.o"
  "CMakeFiles/bench_extension_http2.dir/bench/bench_extension_http2.cpp.o.d"
  "bench/bench_extension_http2"
  "bench/bench_extension_http2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extension_http2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
