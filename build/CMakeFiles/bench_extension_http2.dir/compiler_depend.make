# Empty compiler generated dependencies file for bench_extension_http2.
# This may be replaced when dependencies are built.
