file(REMOVE_RECURSE
  "CMakeFiles/bench_fig18b_chunk_length.dir/bench/bench_fig18b_chunk_length.cpp.o"
  "CMakeFiles/bench_fig18b_chunk_length.dir/bench/bench_fig18b_chunk_length.cpp.o.d"
  "bench/bench_fig18b_chunk_length"
  "bench/bench_fig18b_chunk_length.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18b_chunk_length.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
