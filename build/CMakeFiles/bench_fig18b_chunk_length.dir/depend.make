# Empty dependencies file for bench_fig18b_chunk_length.
# This may be replaced when dependencies are built.
