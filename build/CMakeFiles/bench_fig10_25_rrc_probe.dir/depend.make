# Empty dependencies file for bench_fig10_25_rrc_probe.
# This may be replaced when dependencies are built.
