file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_25_rrc_probe.dir/bench/bench_fig10_25_rrc_probe.cpp.o"
  "CMakeFiles/bench_fig10_25_rrc_probe.dir/bench/bench_fig10_25_rrc_probe.cpp.o.d"
  "bench/bench_fig10_25_rrc_probe"
  "bench/bench_fig10_25_rrc_probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_25_rrc_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
