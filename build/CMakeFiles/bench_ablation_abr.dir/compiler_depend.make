# Empty compiler generated dependencies file for bench_ablation_abr.
# This may be replaced when dependencies are built.
