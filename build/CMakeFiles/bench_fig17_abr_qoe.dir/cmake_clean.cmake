file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_abr_qoe.dir/bench/bench_fig17_abr_qoe.cpp.o"
  "CMakeFiles/bench_fig17_abr_qoe.dir/bench/bench_fig17_abr_qoe.cpp.o.d"
  "bench/bench_fig17_abr_qoe"
  "bench/bench_fig17_abr_qoe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_abr_qoe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
