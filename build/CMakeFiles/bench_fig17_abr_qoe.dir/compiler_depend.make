# Empty compiler generated dependencies file for bench_fig17_abr_qoe.
# This may be replaced when dependencies are built.
