file(REMOVE_RECURSE
  "CMakeFiles/bench_fig18a_predictors.dir/bench/bench_fig18a_predictors.cpp.o"
  "CMakeFiles/bench_fig18a_predictors.dir/bench/bench_fig18a_predictors.cpp.o.d"
  "bench/bench_fig18a_predictors"
  "bench/bench_fig18a_predictors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18a_predictors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
