file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_campaign.dir/bench/bench_table1_campaign.cpp.o"
  "CMakeFiles/bench_table1_campaign.dir/bench/bench_table1_campaign.cpp.o.d"
  "bench/bench_table1_campaign"
  "bench/bench_table1_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
