# Empty dependencies file for bench_fig05_07_tmobile_sa_nsa.
# This may be replaced when dependencies are built.
