file(REMOVE_RECURSE
  "CMakeFiles/bench_fig05_07_tmobile_sa_nsa.dir/bench/bench_fig05_07_tmobile_sa_nsa.cpp.o"
  "CMakeFiles/bench_fig05_07_tmobile_sa_nsa.dir/bench/bench_fig05_07_tmobile_sa_nsa.cpp.o.d"
  "bench/bench_fig05_07_tmobile_sa_nsa"
  "bench/bench_fig05_07_tmobile_sa_nsa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_07_tmobile_sa_nsa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
