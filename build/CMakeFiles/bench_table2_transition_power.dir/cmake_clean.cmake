file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_transition_power.dir/bench/bench_table2_transition_power.cpp.o"
  "CMakeFiles/bench_table2_transition_power.dir/bench/bench_table2_transition_power.cpp.o.d"
  "bench/bench_table2_transition_power"
  "bench/bench_table2_transition_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_transition_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
