file(REMOVE_RECURSE
  "CMakeFiles/bench_fig23_carrier_aggregation.dir/bench/bench_fig23_carrier_aggregation.cpp.o"
  "CMakeFiles/bench_fig23_carrier_aggregation.dir/bench/bench_fig23_carrier_aggregation.cpp.o.d"
  "bench/bench_fig23_carrier_aggregation"
  "bench/bench_fig23_carrier_aggregation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig23_carrier_aggregation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
