# Empty compiler generated dependencies file for bench_fig23_carrier_aggregation.
# This may be replaced when dependencies are built.
