file(REMOVE_RECURSE
  "CMakeFiles/bench_extension_bbr.dir/bench/bench_extension_bbr.cpp.o"
  "CMakeFiles/bench_extension_bbr.dir/bench/bench_extension_bbr.cpp.o.d"
  "bench/bench_extension_bbr"
  "bench/bench_extension_bbr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extension_bbr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
