# Empty dependencies file for bench_extension_bbr.
# This may be replaced when dependencies are built.
