file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_energy_efficiency.dir/bench/bench_fig12_energy_efficiency.cpp.o"
  "CMakeFiles/bench_fig12_energy_efficiency.dir/bench/bench_fig12_energy_efficiency.cpp.o.d"
  "bench/bench_fig12_energy_efficiency"
  "bench/bench_fig12_energy_efficiency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_energy_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
