file(REMOVE_RECURSE
  "CMakeFiles/bench_fig19_20_web_qoe.dir/bench/bench_fig19_20_web_qoe.cpp.o"
  "CMakeFiles/bench_fig19_20_web_qoe.dir/bench/bench_fig19_20_web_qoe.cpp.o.d"
  "bench/bench_fig19_20_web_qoe"
  "bench/bench_fig19_20_web_qoe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig19_20_web_qoe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
