# Empty dependencies file for bench_ablation_power_model.
# This may be replaced when dependencies are built.
