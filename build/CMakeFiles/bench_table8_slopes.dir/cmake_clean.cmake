file(REMOVE_RECURSE
  "CMakeFiles/bench_table8_slopes.dir/bench/bench_table8_slopes.cpp.o"
  "CMakeFiles/bench_table8_slopes.dir/bench/bench_table8_slopes.cpp.o.d"
  "bench/bench_table8_slopes"
  "bench/bench_table8_slopes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table8_slopes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
