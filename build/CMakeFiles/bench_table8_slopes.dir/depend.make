# Empty dependencies file for bench_table8_slopes.
# This may be replaced when dependencies are built.
