# Empty compiler generated dependencies file for bench_fig08_transport_tuning.
# This may be replaced when dependencies are built.
