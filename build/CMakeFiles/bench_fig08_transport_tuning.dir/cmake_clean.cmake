file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_transport_tuning.dir/bench/bench_fig08_transport_tuning.cpp.o"
  "CMakeFiles/bench_fig08_transport_tuning.dir/bench/bench_fig08_transport_tuning.cpp.o.d"
  "bench/bench_fig08_transport_tuning"
  "bench/bench_fig08_transport_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_transport_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
