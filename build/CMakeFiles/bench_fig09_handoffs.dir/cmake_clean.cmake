file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_handoffs.dir/bench/bench_fig09_handoffs.cpp.o"
  "CMakeFiles/bench_fig09_handoffs.dir/bench/bench_fig09_handoffs.cpp.o.d"
  "bench/bench_fig09_handoffs"
  "bench/bench_fig09_handoffs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_handoffs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
