# Empty compiler generated dependencies file for bench_fig26_27_s10_power.
# This may be replaced when dependencies are built.
