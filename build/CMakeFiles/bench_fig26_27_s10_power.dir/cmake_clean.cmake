file(REMOVE_RECURSE
  "CMakeFiles/bench_fig26_27_s10_power.dir/bench/bench_fig26_27_s10_power.cpp.o"
  "CMakeFiles/bench_fig26_27_s10_power.dir/bench/bench_fig26_27_s10_power.cpp.o.d"
  "bench/bench_fig26_27_s10_power"
  "bench/bench_fig26_27_s10_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig26_27_s10_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
