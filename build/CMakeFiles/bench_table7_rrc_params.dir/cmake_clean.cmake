file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_rrc_params.dir/bench/bench_table7_rrc_params.cpp.o"
  "CMakeFiles/bench_table7_rrc_params.dir/bench/bench_table7_rrc_params.cpp.o.d"
  "bench/bench_table7_rrc_params"
  "bench/bench_table7_rrc_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_rrc_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
