# Empty compiler generated dependencies file for bench_table7_rrc_params.
# This may be replaced when dependencies are built.
