file(REMOVE_RECURSE
  "CMakeFiles/bench_extension_drive_energy.dir/bench/bench_extension_drive_energy.cpp.o"
  "CMakeFiles/bench_extension_drive_energy.dir/bench/bench_extension_drive_energy.cpp.o.d"
  "bench/bench_extension_drive_energy"
  "bench/bench_extension_drive_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extension_drive_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
