# Empty compiler generated dependencies file for bench_extension_drive_energy.
# This may be replaced when dependencies are built.
