
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig04_uplink_distance.cpp" "CMakeFiles/bench_fig04_uplink_distance.dir/bench/bench_fig04_uplink_distance.cpp.o" "gcc" "CMakeFiles/bench_fig04_uplink_distance.dir/bench/bench_fig04_uplink_distance.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/wild5g_net.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/wild5g_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/radio/CMakeFiles/wild5g_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/wild5g_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/wild5g_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
