# Empty dependencies file for bench_fig04_uplink_distance.
# This may be replaced when dependencies are built.
