# Empty compiler generated dependencies file for bench_fig21_penalty_saving.
# This may be replaced when dependencies are built.
