file(REMOVE_RECURSE
  "CMakeFiles/bench_fig21_penalty_saving.dir/bench/bench_fig21_penalty_saving.cpp.o"
  "CMakeFiles/bench_fig21_penalty_saving.dir/bench/bench_fig21_penalty_saving.cpp.o.d"
  "bench/bench_fig21_penalty_saving"
  "bench/bench_fig21_penalty_saving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig21_penalty_saving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
