file(REMOVE_RECURSE
  "CMakeFiles/bench_extension_pensieve_5g.dir/bench/bench_extension_pensieve_5g.cpp.o"
  "CMakeFiles/bench_extension_pensieve_5g.dir/bench/bench_extension_pensieve_5g.cpp.o.d"
  "bench/bench_extension_pensieve_5g"
  "bench/bench_extension_pensieve_5g.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extension_pensieve_5g.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
