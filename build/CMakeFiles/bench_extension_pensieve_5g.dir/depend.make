# Empty dependencies file for bench_extension_pensieve_5g.
# This may be replaced when dependencies are built.
