file(REMOVE_RECURSE
  "CMakeFiles/bench_baseline_2019.dir/bench/bench_baseline_2019.cpp.o"
  "CMakeFiles/bench_baseline_2019.dir/bench/bench_baseline_2019.cpp.o.d"
  "bench/bench_baseline_2019"
  "bench/bench_baseline_2019.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_baseline_2019.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
