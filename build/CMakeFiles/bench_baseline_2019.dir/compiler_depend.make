# Empty compiler generated dependencies file for bench_baseline_2019.
# This may be replaced when dependencies are built.
