# Empty dependencies file for test_rrc_live_machine.
# This may be replaced when dependencies are built.
