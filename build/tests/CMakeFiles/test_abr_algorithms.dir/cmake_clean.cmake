file(REMOVE_RECURSE
  "CMakeFiles/test_abr_algorithms.dir/test_abr_algorithms.cpp.o"
  "CMakeFiles/test_abr_algorithms.dir/test_abr_algorithms.cpp.o.d"
  "test_abr_algorithms"
  "test_abr_algorithms.pdb"
  "test_abr_algorithms[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_abr_algorithms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
