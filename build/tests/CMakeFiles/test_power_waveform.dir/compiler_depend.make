# Empty compiler generated dependencies file for test_power_waveform.
# This may be replaced when dependencies are built.
