file(REMOVE_RECURSE
  "CMakeFiles/test_power_waveform.dir/test_power_waveform.cpp.o"
  "CMakeFiles/test_power_waveform.dir/test_power_waveform.cpp.o.d"
  "test_power_waveform"
  "test_power_waveform.pdb"
  "test_power_waveform[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_power_waveform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
