file(REMOVE_RECURSE
  "CMakeFiles/test_rrc_state_machine.dir/test_rrc_state_machine.cpp.o"
  "CMakeFiles/test_rrc_state_machine.dir/test_rrc_state_machine.cpp.o.d"
  "test_rrc_state_machine"
  "test_rrc_state_machine.pdb"
  "test_rrc_state_machine[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rrc_state_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
