file(REMOVE_RECURSE
  "CMakeFiles/test_abr_pensieve.dir/test_abr_pensieve.cpp.o"
  "CMakeFiles/test_abr_pensieve.dir/test_abr_pensieve.cpp.o.d"
  "test_abr_pensieve"
  "test_abr_pensieve.pdb"
  "test_abr_pensieve[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_abr_pensieve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
