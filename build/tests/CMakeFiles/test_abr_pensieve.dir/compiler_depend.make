# Empty compiler generated dependencies file for test_abr_pensieve.
# This may be replaced when dependencies are built.
