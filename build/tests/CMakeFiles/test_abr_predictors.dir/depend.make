# Empty dependencies file for test_abr_predictors.
# This may be replaced when dependencies are built.
