file(REMOVE_RECURSE
  "CMakeFiles/test_abr_predictors.dir/test_abr_predictors.cpp.o"
  "CMakeFiles/test_abr_predictors.dir/test_abr_predictors.cpp.o.d"
  "test_abr_predictors"
  "test_abr_predictors.pdb"
  "test_abr_predictors[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_abr_predictors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
