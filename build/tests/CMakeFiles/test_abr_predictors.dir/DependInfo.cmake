
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_abr_predictors.cpp" "tests/CMakeFiles/test_abr_predictors.dir/test_abr_predictors.cpp.o" "gcc" "tests/CMakeFiles/test_abr_predictors.dir/test_abr_predictors.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/abr/CMakeFiles/wild5g_abr.dir/DependInfo.cmake"
  "/root/repo/build/src/traces/CMakeFiles/wild5g_traces.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/wild5g_power.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/wild5g_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/rrc/CMakeFiles/wild5g_rrc.dir/DependInfo.cmake"
  "/root/repo/build/src/radio/CMakeFiles/wild5g_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/wild5g_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/wild5g_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
