file(REMOVE_RECURSE
  "CMakeFiles/test_transport_bbr.dir/test_transport_bbr.cpp.o"
  "CMakeFiles/test_transport_bbr.dir/test_transport_bbr.cpp.o.d"
  "test_transport_bbr"
  "test_transport_bbr.pdb"
  "test_transport_bbr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_transport_bbr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
