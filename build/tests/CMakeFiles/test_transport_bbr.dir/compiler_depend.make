# Empty compiler generated dependencies file for test_transport_bbr.
# This may be replaced when dependencies are built.
