# Empty compiler generated dependencies file for test_radio_handoff.
# This may be replaced when dependencies are built.
