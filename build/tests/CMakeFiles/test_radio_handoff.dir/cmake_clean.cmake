file(REMOVE_RECURSE
  "CMakeFiles/test_radio_handoff.dir/test_radio_handoff.cpp.o"
  "CMakeFiles/test_radio_handoff.dir/test_radio_handoff.cpp.o.d"
  "test_radio_handoff"
  "test_radio_handoff.pdb"
  "test_radio_handoff[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_radio_handoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
