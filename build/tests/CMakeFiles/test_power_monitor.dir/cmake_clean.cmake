file(REMOVE_RECURSE
  "CMakeFiles/test_power_monitor.dir/test_power_monitor.cpp.o"
  "CMakeFiles/test_power_monitor.dir/test_power_monitor.cpp.o.d"
  "test_power_monitor"
  "test_power_monitor.pdb"
  "test_power_monitor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_power_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
