# Empty dependencies file for test_power_monitor.
# This may be replaced when dependencies are built.
