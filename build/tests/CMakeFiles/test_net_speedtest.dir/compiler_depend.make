# Empty compiler generated dependencies file for test_net_speedtest.
# This may be replaced when dependencies are built.
