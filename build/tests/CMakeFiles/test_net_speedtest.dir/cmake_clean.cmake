file(REMOVE_RECURSE
  "CMakeFiles/test_net_speedtest.dir/test_net_speedtest.cpp.o"
  "CMakeFiles/test_net_speedtest.dir/test_net_speedtest.cpp.o.d"
  "test_net_speedtest"
  "test_net_speedtest.pdb"
  "test_net_speedtest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_net_speedtest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
