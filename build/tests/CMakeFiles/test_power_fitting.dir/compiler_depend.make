# Empty compiler generated dependencies file for test_power_fitting.
# This may be replaced when dependencies are built.
