file(REMOVE_RECURSE
  "CMakeFiles/test_power_fitting.dir/test_power_fitting.cpp.o"
  "CMakeFiles/test_power_fitting.dir/test_power_fitting.cpp.o.d"
  "test_power_fitting"
  "test_power_fitting.pdb"
  "test_power_fitting[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_power_fitting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
