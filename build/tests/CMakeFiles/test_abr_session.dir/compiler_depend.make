# Empty compiler generated dependencies file for test_abr_session.
# This may be replaced when dependencies are built.
