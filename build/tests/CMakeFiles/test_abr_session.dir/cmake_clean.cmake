file(REMOVE_RECURSE
  "CMakeFiles/test_abr_session.dir/test_abr_session.cpp.o"
  "CMakeFiles/test_abr_session.dir/test_abr_session.cpp.o.d"
  "test_abr_session"
  "test_abr_session.pdb"
  "test_abr_session[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_abr_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
