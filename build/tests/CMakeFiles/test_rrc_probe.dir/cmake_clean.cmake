file(REMOVE_RECURSE
  "CMakeFiles/test_rrc_probe.dir/test_rrc_probe.cpp.o"
  "CMakeFiles/test_rrc_probe.dir/test_rrc_probe.cpp.o.d"
  "test_rrc_probe"
  "test_rrc_probe.pdb"
  "test_rrc_probe[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rrc_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
