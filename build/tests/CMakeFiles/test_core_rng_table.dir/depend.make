# Empty dependencies file for test_core_rng_table.
# This may be replaced when dependencies are built.
