file(REMOVE_RECURSE
  "CMakeFiles/test_abr_interface.dir/test_abr_interface.cpp.o"
  "CMakeFiles/test_abr_interface.dir/test_abr_interface.cpp.o.d"
  "test_abr_interface"
  "test_abr_interface.pdb"
  "test_abr_interface[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_abr_interface.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
