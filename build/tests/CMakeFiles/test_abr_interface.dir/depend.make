# Empty dependencies file for test_abr_interface.
# This may be replaced when dependencies are built.
