# Empty compiler generated dependencies file for wild5g_study.
# This may be replaced when dependencies are built.
