file(REMOVE_RECURSE
  "CMakeFiles/wild5g_study.dir/wild5g_study.cpp.o"
  "CMakeFiles/wild5g_study.dir/wild5g_study.cpp.o.d"
  "wild5g_study"
  "wild5g_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wild5g_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
